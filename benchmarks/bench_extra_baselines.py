"""Extended rule-based shootout (beyond the paper's BO/ISB).

The paper compares DART against BO and ISB; this bench fills in the classic
rule-based field — Streamer, GHB G/DC and PC/DC, Markov, SMS, SPP — on the
same traces and simulator, so DART's Table IX comparison can be read against
the whole design space rather than two points. Shape assertions: every
prefetcher helps on the easy streaming app, and the spatial designs beat the
pure-memorization Markov baseline on average.
"""

from repro.prefetch import (
    BestOffsetPrefetcher,
    GHBPrefetcher,
    ISBPrefetcher,
    MarkovPrefetcher,
    SMSPrefetcher,
    SPPPrefetcher,
    StreamPrefetcher,
)
from repro.sim import SimConfig, ipc_improvement, simulate
from repro.traces import make_workload
from repro.utils import log


def _roster():
    return [
        StreamPrefetcher(),
        BestOffsetPrefetcher(),
        ISBPrefetcher(),
        SPPPrefetcher(),
        SMSPrefetcher(),
        GHBPrefetcher("global"),
        GHBPrefetcher("pc"),
        MarkovPrefetcher(),
    ]


def bench_extra_baselines_shootout(benchmark, profile):
    cfg = SimConfig()
    apps = profile.sim_apps

    def run():
        results = {}
        for app in apps:
            trace = make_workload(app, scale=profile.sim_trace_scale, seed=2)
            base = simulate(trace, None, cfg)
            for pf in _roster():
                r = simulate(trace, pf, cfg)
                results[(app, pf.name)] = (
                    ipc_improvement(r, base),
                    r.accuracy,
                    r.coverage(base.demand_misses),
                )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    names = [pf.name for pf in _roster()]
    rows = []
    means = {}
    for name in names:
        vals = [results[(a, name)] for a in apps if (a, name) in results]
        imp = sum(v[0] for v in vals) / len(vals)
        acc = sum(v[1] for v in vals) / len(vals)
        cov = sum(v[2] for v in vals) / len(vals)
        means[name] = imp
        rows.append([name, f"{imp:+.1%}", f"{acc:.2%}", f"{cov:.2%}"])
    log.table(
        f"Extended baselines, mean over {list(apps)}",
        ["prefetcher", "IPC improvement", "accuracy", "coverage"],
        rows,
    )
    # Shapes: streaming-capable designs must help on average over these apps.
    assert means["Streamer"] > 0.0
    assert means["BO"] > 0.0
    # All metrics are well-formed.
    for (_, _), (imp, acc, cov) in results.items():
        assert -1.0 < imp < 10.0
        assert 0.0 <= acc <= 1.0
        assert 0.0 <= cov <= 1.0


def bench_extra_baselines_streaming_sanity(benchmark):
    """On a pure stream, every spatial prefetcher must help materially."""
    from repro.traces.generators import StreamPhase, compose_trace

    trace = compose_trace(
        [(StreamPhase(0, 10**7, stride_blocks=1), 6000)], seed=0, mean_instr_gap=20
    )
    cfg = SimConfig()
    base = simulate(trace, None, cfg)

    def run():
        # GHB at degree 16: its replay depth is its only lookahead, and a
        # 200-cycle miss needs ~10 accesses of it (see DESIGN.md timeliness).
        return {
            pf.name: ipc_improvement(simulate(trace, pf, cfg), base)
            for pf in (StreamPrefetcher(), BestOffsetPrefetcher(), SPPPrefetcher(),
                       GHBPrefetcher("global", degree=16))
        }

    imps = benchmark.pedantic(run, rounds=1, iterations=1)
    log.table(
        "Streaming sanity (pure unit-stride stream)",
        ["prefetcher", "IPC improvement"],
        [[k, f"{v:+.1%}"] for k, v in imps.items()],
    )
    for name, imp in imps.items():
        assert imp > 0.05, f"{name} failed to help on a pure stream"
