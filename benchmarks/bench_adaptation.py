"""Drift-aware adaptation vs. frozen tables on a phase-switching workload.

Not a paper figure — the deployment-side check for the online adaptation
runtime. The scenario: a student NN is distilled on a workload containing
two phases (unit-stride streaming, then a strided multi-array walk over a
different address region), but the *tables* are fit on phase-A data only —
exactly the "train once, serve forever" deployment the paper describes. When
the stream shifts to phase B, the frozen tables lose accuracy (the PQ
prototypes no longer cover the live input distribution) even though the
underlying student still generalizes; the adaptive engine must

(a) detect the drift (feature signal within ~one feature-window of the
    boundary, or the windowed-accuracy drop),
(b) re-tabularize the frozen student on the post-boundary window (Eq. 26
    fine-tuning + PQ re-fit) and hot-swap the result with zero dropped
    emissions, and
(c) recover **at least half** of the frozen-table accuracy loss on the
    post-shift tail, with the swap pause bounded by one flush
    (``last_swap_drained <= batch_size``).

Run standalone (writes the ``BENCH_adaptation.json`` trajectory artifact)::

    PYTHONPATH=src python benchmarks/bench_adaptation.py

``--smoke`` (CI) shrinks the trace and training budget; the recovery bar
drops to "adaptive beats frozen on the tail" since tiny runs are noisier.
Future PRs compare their numbers against the committed history of this
artifact; keep the workload/seed stable.
"""

from __future__ import annotations

import argparse
import json

from repro.data import PreprocessConfig, build_dataset
from repro.distillation import TrainConfig, train_model
from repro.models import AttentionPredictor, ModelConfig
from repro.prefetch import DARTPrefetcher
from repro.runtime import AdaptationConfig, ModelArtifact, score_prefetch_lists, serve
from repro.tabularization import TableConfig, tabularize_predictor
from repro.traces import phase_shift_trace
from repro.utils import log

#: geometry kept small so the bench finishes in CI; recovery ratios, not
#: absolute accuracy, are the tracked quantity.
PREPROCESS = PreprocessConfig(history_len=8, window=6, delta_range=32)
MODEL = ModelConfig(layers=1, dim=16, heads=2, history_len=8, bitmap_size=64)
TABLE = TableConfig.uniform(32, 2)
LOOKAHEAD = 8


def build_artifact(trace, shift: int, student_samples: int, table_samples: int,
                   epochs: int):
    """Student distilled on the whole workload; tables fit on phase A only.

    Model seeds are fixed (independent of the trace seed): the tracked
    quantity is recovery of *table* fidelity, so the student must stay the
    same competent model across trace-seed sweeps.
    """
    ds = build_dataset(trace.pcs, trace.addrs, PREPROCESS, max_samples=student_samples)
    seg = PREPROCESS.segmenter()
    student = AttentionPredictor(MODEL, seg.n_addr_segments, seg.n_pc_segments, rng=0)
    train_model(student, ds, None,
                TrainConfig(epochs=epochs, batch_size=128, lr=2e-3, seed=0))
    tr_a = trace.slice(0, shift)
    ds_a = build_dataset(tr_a.pcs, tr_a.addrs, PREPROCESS, max_samples=table_samples)
    tables, _ = tabularize_predictor(
        student, ds_a.x_addr, ds_a.x_pc, TABLE, fine_tune=True, rng=1
    )
    artifact = ModelArtifact(tables, version=1, metadata={"fit": "phase-A"})
    return artifact, student


def serve_collect(stream, trace) -> list[list[int]]:
    """Drive the stream over the trace; attributed per-access lists."""
    _, lists = serve(stream, trace, collect=True, measure=False)
    return lists


def run(accesses: int, student_samples: int, table_samples: int, epochs: int,
        batch_size: int, max_wait: int, window: int, output: str | None,
        seed: int = 2, smoke: bool = False) -> dict:
    trace = phase_shift_trace(accesses, shift_at=0.5, seed=seed)
    shift = len(trace) // 2
    tail = shift + (len(trace) - shift) // 2  # adaptation must settle by here
    artifact, student = build_artifact(trace, shift, student_samples, table_samples,
                                       epochs)
    dart = DARTPrefetcher(artifact, PREPROCESS, threshold=0.5, max_degree=2,
                          student=student)
    blocks = trace.block_addrs

    def phase_scores(lists) -> dict:
        return {
            "phase_a": score_prefetch_lists(lists[:shift], blocks[:shift], LOOKAHEAD),
            "phase_b_tail": score_prefetch_lists(lists[tail:], blocks[tail:], LOOKAHEAD),
        }

    # Student ceiling: the NN served directly — adaptation can at best
    # restore table fidelity to this.
    from repro.prefetch import NeuralPrefetcher

    student_pf = NeuralPrefetcher(student, PREPROCESS, "student", latency_cycles=0,
                                  threshold=0.5, max_degree=2)
    ceiling = phase_scores(student_pf.prefetch_lists(trace))

    # Frozen baseline: the tables never change.
    frozen_lists = serve_collect(
        dart.stream(batch_size=batch_size, max_wait=max_wait), trace
    )
    frozen = phase_scores(frozen_lists)

    # Adaptive engine: drift monitor + re-fit + hot swap.
    cfg = AdaptationConfig(
        window=window, lookahead=LOOKAHEAD, check_every=128, min_samples=128,
        result_window=512, acc_drop=0.15, feature_window=min(512, window // 2),
        feature_threshold=6.0, refit_samples=table_samples, seed=seed + 3,
    )
    adaptive_stream = dart.stream(batch_size=batch_size, max_wait=max_wait, adapt=cfg)
    adaptive_lists = serve_collect(adaptive_stream, trace)
    adaptive = phase_scores(adaptive_lists)
    summary = adaptive_stream.adaptation_summary()
    engine = adaptive_stream._engine._mb

    acc_a = frozen["phase_a"]["accuracy"]
    acc_b_frozen = frozen["phase_b_tail"]["accuracy"]
    acc_b_adaptive = adaptive["phase_b_tail"]["accuracy"]
    loss = acc_a - acc_b_frozen
    recovered = acc_b_adaptive - acc_b_frozen
    ratio = recovered / loss if loss > 1e-9 else float("inf")
    swap_bounded = engine.last_swap_drained <= batch_size

    record = {
        "workload": "phase-shift",
        "seed": seed,
        "accesses": accesses,
        "shift_at": shift,
        "tail_from": tail,
        "batch_size": batch_size,
        "max_wait": max_wait,
        "adapt_window": window,
        "lookahead": LOOKAHEAD,
        "frozen": frozen,
        "adaptive": adaptive,
        "student_ceiling": ceiling,
        "adaptations": summary["adaptations"],
        "final_version": summary["version"],
        "events": summary["events"],
        "last_swap_drained": engine.last_swap_drained,
        "swap_pause_bounded_by_one_flush": swap_bounded,
        "frozen_loss": loss,
        "recovered": recovered,
        "recovery_ratio": ratio,
    }

    log.table(
        f"adaptive vs frozen serving on a phase shift ({accesses:,} accesses, "
        f"B={batch_size}, window={window})",
        ["engine", "phase A acc", "phase B tail acc", "swaps"],
        [
            ["frozen", f"{acc_a:.3f}", f"{acc_b_frozen:.3f}", "0"],
            ["adaptive", f"{adaptive['phase_a']['accuracy']:.3f}",
             f"{acc_b_adaptive:.3f}", str(summary["adaptations"])],
            ["student (ceiling)", f"{ceiling['phase_a']['accuracy']:.3f}",
             f"{ceiling['phase_b_tail']['accuracy']:.3f}", "-"],
        ],
    )
    for ev in summary["events"]:
        log.info(f"  event: {ev}")

    # Smoke runs are tiny and noisy: only require the adaptive engine to beat
    # the frozen one on the tail. The full run gates the paper-grade bar.
    if smoke:
        ok = (summary["adaptations"] >= 1 and recovered > 0 and swap_bounded)
        bar = "recovered > 0"
    else:
        ok = (summary["adaptations"] >= 1 and loss > 0.05
              and recovered >= 0.5 * loss and swap_bounded)
        bar = ">= half of frozen loss"
    record["pass"] = ok
    verdict = "PASS" if ok else "FAIL"
    print(
        f"[{verdict}] frozen loss {loss:.3f}, recovered {recovered:.3f} "
        f"({ratio:.0%}, bar: {bar}); {summary['adaptations']} swap(s), "
        f"pause {engine.last_swap_drained} queries (<= B={batch_size}: {swap_bounded})"
    )
    if output:
        with open(output, "w", encoding="utf-8") as f:
            json.dump(record, f, indent=2, sort_keys=True)
        print(f"wrote {output}")
    return record


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--accesses", type=int, default=24_000)
    ap.add_argument("--train-samples", type=int, default=2400,
                    help="student training samples (whole workload)")
    ap.add_argument("--table-samples", type=int, default=1600,
                    help="table-fit / re-fit samples (one phase)")
    ap.add_argument("--epochs", type=int, default=3)
    ap.add_argument("--batch-size", type=int, default=32)
    ap.add_argument("--max-wait", type=int, default=8)
    ap.add_argument("--window", type=int, default=2048)
    ap.add_argument("--seed", type=int, default=2)
    ap.add_argument("--output", "-o", default="BENCH_adaptation.json")
    ap.add_argument("--smoke", action="store_true",
                    help="tiny CI run: short trace, light training")
    args = ap.parse_args(argv)
    if args.smoke:
        # Short trace but a solid training budget: an undertrained student
        # prefetches pure noise and the recovery signal vanishes.
        args.accesses = 12_000
        args.train_samples = 2000
        args.table_samples = 1200
        args.epochs = 4
        args.window = 1024
    record = run(args.accesses, args.train_samples, args.table_samples, args.epochs,
                 args.batch_size, args.max_wait, args.window, args.output,
                 seed=args.seed, smoke=args.smoke)
    return 0 if record["pass"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
