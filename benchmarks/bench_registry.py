"""Model registry: delta storage ratio, push/pull/checkout latency, rollout pause.

Not a paper figure — the operational check for the model lifecycle layer.
A re-fit chain published to the content-addressed registry must cost far
less than storing every version in full, round trips through a remote must
be cheap and exact, and a staged fleet rollout must promote without a
serving stall. Four bars:

* **delta ratio** — a ``--depth``-long chain of re-fits (each touching a
  few table rows) stored as one full snapshot plus deltas must be at least
  5x smaller than ``depth`` full snapshots, with every intermediate version
  checking out bit-identical;
* **checkout latency** — resolving the chain head replays every delta; the
  per-version walk must stay in single-digit milliseconds at depth 10;
* **push/pull latency** — a full-chain push to a filesystem remote, a pull
  into a cold registry, and a checkout from the pulled copy (gated on
  bit-identity with the original head);
* **rollout pause** — a canary rollout over a live sharded fleet: the
  canary install and the promote swap are timed, and every stream must see
  exactly one emission per access (zero dropped) across the whole rollout.

Run standalone (writes the ``BENCH_registry.json`` artifact)::

    PYTHONPATH=src python benchmarks/bench_registry.py --depth 10

``--smoke`` (CI) shrinks the serving leg to 2 streams x ~600 accesses.
Future PRs compare their numbers against the committed history of this
artifact; keep the workload/seed stable.
"""

from __future__ import annotations

import argparse
import json
import shutil
import tempfile
import time
from pathlib import Path

import numpy as np

from bench_sharded import build_dart, make_streams

from repro.registry import (
    FilesystemRemote,
    FleetRollout,
    ModelRegistry,
    RolloutConfig,
)
from repro.runtime import ModelArtifact
from repro.runtime.artifact import VERSION_KEY
from repro.utils import log


def perturbed_successor(artifact: ModelArtifact, seed: int, cells: int = 4):
    """A re-fit that touched a handful of cells in one table row."""
    rng = np.random.default_rng(seed)
    state = artifact.state()
    table = np.array(state["addr/table"])
    row = table[0]
    idx = rng.integers(0, row.shape[0], size=cells)
    jdx = rng.integers(0, row.shape[1], size=cells)
    row[idx, jdx] += rng.standard_normal(cells).astype(row.dtype) * 0.01
    state["addr/table"] = table
    state[VERSION_KEY] = np.array([artifact.version + 1], dtype=np.int64)
    return ModelArtifact.from_state(state)


def states_identical(a: dict, b: dict) -> bool:
    return set(a) == set(b) and all(
        np.asarray(a[k]).tobytes() == np.asarray(b[k]).tobytes() for k in a
    )


def run(
    depth: int,
    accesses: int,
    n_streams: int,
    workers: int,
    batch_size: int,
    output: str | None,
    seed: int = 2,
) -> dict:
    perf = time.perf_counter
    traces = make_streams(n_streams, accesses, seed)
    dart_raw = build_dart(traces[0])
    baseline = ModelArtifact(dart_raw.predictor, version=1)
    from repro.prefetch import DARTPrefetcher

    dart = DARTPrefetcher(
        baseline, dart_raw.config,
        threshold=dart_raw.threshold, max_degree=dart_raw.max_degree,
    )
    workdir = Path(tempfile.mkdtemp(prefix="bench-registry-"))
    try:
        # ---- 1. publish a re-fit chain, measure storage -------------------
        reg = ModelRegistry(workdir / "reg")
        chain = [baseline]
        while len(chain) < depth:
            chain.append(perturbed_successor(chain[-1], seed=seed + len(chain)))
        put_s = []
        head = None
        t0 = perf()
        for art in chain:
            t1 = perf()
            head = reg.put(art, parent=head, name="serving")
            put_s.append(perf() - t1)
        publish_seconds = perf() - t0
        stats = reg.stats()
        full_bytes = stats["payload_bytes"]["full"]
        chain_bytes = full_bytes + stats["payload_bytes"]["delta"]
        naive_bytes = depth * full_bytes
        ratio = naive_bytes / chain_bytes

        # Every intermediate must reconstruct bit-identical through the walk.
        digests = reg.log("serving")
        exact_chain = all(
            states_identical(reg.get(d["digest"]).state(), art.state())
            for d, art in zip(reversed(digests), chain)
        )

        t1 = perf()
        checked_out = reg.get("serving")
        checkout_seconds = perf() - t1

        # ---- 2. push / pull through a filesystem remote -------------------
        remote = FilesystemRemote(workdir / "remote")
        t1 = perf()
        pushed = reg.push("serving", remote)
        push_seconds = perf() - t1
        cold = ModelRegistry(workdir / "cold", remote=remote)
        t1 = perf()
        pulled = cold.pull("serving")
        pull_seconds = perf() - t1
        t1 = perf()
        cold_head = cold.get("serving")
        cold_checkout_seconds = perf() - t1
        remote_exact = states_identical(cold_head.state(), chain[-1].state())

        # ---- 3. staged rollout over a live fleet --------------------------
        candidate = perturbed_successor(chain[-1], seed=seed + 999)
        cfg = RolloutConfig(
            canary_workers=1, check_every=32, min_samples=16,
            regression_drop=0.5, promote_after=max(accesses // 2, 64),
            lookahead=16, window=4096, result_window=1024,
        )
        counts = [0] * n_streams
        emitted = [0] * n_streams
        ordered = True
        with dart.sharded(workers=workers, batch_size=batch_size,
                          max_wait=4, io_chunk=1) as engine:
            handles = engine.streams(n_streams)
            rollout = FleetRollout(engine, candidate, baseline, cfg,
                                   registry=reg, ref="serving")
            t1 = perf()
            rollout.start()
            canary_pause = perf() - t1
            observe_max = 0.0
            next_seq = [0] * n_streams
            for i in range(accesses):
                for s, (h, tr) in enumerate(zip(handles, traces)):
                    t2 = perf()
                    ems = h.ingest(int(tr.pcs[i]), int(tr.addrs[i]))
                    rollout.observe(h, int(tr.pcs[i]), int(tr.addrs[i]), ems)
                    observe_max = max(observe_max, perf() - t2)
                    counts[s] += 1
                    emitted[s] += len(ems)
                    for em in ems:
                        ordered &= em.seq == next_seq[s]
                        next_seq[s] += 1
            engine.flush_all()
            for s, h in enumerate(handles):
                for em in h.poll():
                    emitted[s] += 1
                    ordered &= em.seq == next_seq[s]
                    next_seq[s] += 1
            rollout_state = rollout.state
            promote_event = next(
                (e for e in rollout.events if e["action"] == "promote"), None
            )
        zero_dropped = ordered and emitted == counts
        promoted = rollout_state == "promoted" and promote_event is not None
        ref_advanced = promoted and reg.resolve("serving") == rollout.published
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    record = {
        "workload": "462.libquantum",
        "seed": seed,
        "depth": depth,
        "streams": n_streams,
        "accesses_per_stream": accesses,
        "workers": workers,
        "batch_size": batch_size,
        "full_snapshot_bytes": full_bytes,
        "chain_bytes": chain_bytes,
        "naive_bytes": naive_bytes,
        "delta_ratio": ratio,
        "publish_seconds": publish_seconds,
        "put_p50_ms": sorted(put_s)[len(put_s) // 2] * 1e3,
        "put_max_ms": max(put_s) * 1e3,
        "checkout_seconds": checkout_seconds,
        "checkout_per_version_ms": checkout_seconds / depth * 1e3,
        "push_seconds": push_seconds,
        "push_objects": pushed["pushed"],
        "pull_seconds": pull_seconds,
        "pull_objects": pulled["pulled"],
        "cold_checkout_seconds": cold_checkout_seconds,
        "chain_bit_identical": exact_chain,
        "remote_bit_identical": remote_exact,
        "checked_out_version": checked_out.version,
        "rollout_state": rollout_state,
        "rollout_canary_pause_ms": canary_pause * 1e3,
        "rollout_observe_max_ms": observe_max * 1e3,
        "rollout_zero_dropped": zero_dropped,
        "rollout_ref_advanced": ref_advanced,
    }
    record["pass"] = (
        ratio >= 5.0
        and exact_chain
        and remote_exact
        and promoted
        and zero_dropped
        and ref_advanced
    )

    log.table(
        f"registry: {depth}-deep re-fit chain + canary rollout over "
        f"{n_streams} streams (W={workers})",
        ["metric", "value"],
        [
            ["full snapshot bytes", f"{full_bytes:,}"],
            ["chain bytes (1 full + {0} deltas)".format(depth - 1),
             f"{chain_bytes:,}"],
            ["delta ratio vs naive", f"{ratio:.1f}x (gate >= 5x)"],
            ["put p50/max ms", f"{record['put_p50_ms']:.1f} / "
                               f"{record['put_max_ms']:.1f}"],
            ["checkout head (replays chain)",
             f"{checkout_seconds * 1e3:.1f} ms "
             f"({record['checkout_per_version_ms']:.2f} ms/version)"],
            ["push / pull / cold checkout",
             f"{push_seconds * 1e3:.1f} / {pull_seconds * 1e3:.1f} / "
             f"{cold_checkout_seconds * 1e3:.1f} ms"],
            ["chain + remote bit-identical", f"{exact_chain} / {remote_exact}"],
            ["rollout", f"{rollout_state} (canary pause "
                        f"{canary_pause * 1e3:.1f} ms, observe max "
                        f"{observe_max * 1e3:.1f} ms)"],
            ["zero dropped emissions", str(zero_dropped)],
        ],
    )
    verdict = "PASS" if record["pass"] else "FAIL"
    print(
        f"[{verdict}] delta ratio {ratio:.1f}x, chain exact={exact_chain}, "
        f"remote exact={remote_exact}, rollout={rollout_state}, "
        f"zero dropped={zero_dropped}"
    )
    if output:
        with open(output, "w", encoding="utf-8") as f:
            json.dump(record, f, indent=2, sort_keys=True)
        print(f"wrote {output}")
    return record


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--depth", type=int, default=10, help="chain length")
    ap.add_argument("--accesses", type=int, default=2000, help="per stream")
    ap.add_argument("--streams", type=int, default=4)
    ap.add_argument("--workers", type=int, default=2)
    ap.add_argument("--batch-size", type=int, default=16)
    ap.add_argument("--seed", type=int, default=2)
    ap.add_argument("--output", "-o", default="BENCH_registry.json")
    ap.add_argument("--smoke", action="store_true",
                    help="tiny CI run: 2 streams x 600 accesses")
    args = ap.parse_args(argv)
    if args.smoke:
        args.accesses = 600
        args.streams = 2
    record = run(
        args.depth, args.accesses, args.streams, args.workers,
        args.batch_size, args.output, seed=args.seed,
    )
    return 0 if record["pass"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
