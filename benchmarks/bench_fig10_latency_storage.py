"""Figure 10 — latency and storage versus K and C (analytic cost model).

Expected shapes (paper): latency scales *linearly* with log(K) and log(C);
storage grows ~exponentially (K for linear tables, K^2 for attention tables).
"""

import numpy as np

from repro.models import ModelConfig
from repro.prefetch import tabular_model_latency, tabular_model_storage_bits
from repro.tabularization import TableConfig
from repro.utils import log

MODEL = ModelConfig(layers=1, dim=32, heads=2, history_len=16, bitmap_size=256)


def bench_fig10_latency_storage_scaling(benchmark):
    ks = (16, 32, 64, 128, 256, 512, 1024)
    cs = (1, 2, 4, 8)

    def compute():
        k_rows = [
            (k, tabular_model_latency(MODEL, TableConfig.uniform(k, 2)),
             tabular_model_storage_bits(MODEL, TableConfig.uniform(k, 2)) / 8 / 1024)
            for k in ks
        ]
        c_rows = [
            (c, tabular_model_latency(MODEL, TableConfig.uniform(128, c)),
             tabular_model_storage_bits(MODEL, TableConfig.uniform(128, c)) / 8 / 1024)
            for c in cs
        ]
        return k_rows, c_rows

    k_rows, c_rows = benchmark(compute)
    log.table(
        "Fig. 10 (left): latency & storage vs K (C=2)",
        ["K", "latency (cyc)", "storage (KB)"],
        [[k, f"{l:.0f}", f"{s:,.1f}"] for k, l, s in k_rows],
    )
    log.table(
        "Fig. 10 (right): latency & storage vs C (K=128)",
        ["C", "latency (cyc)", "storage (KB)"],
        [[c, f"{l:.0f}", f"{s:,.1f}"] for c, l, s in c_rows],
    )
    # latency linear in log2(K): constant increment per doubling
    lat = [l for _, l, _ in k_rows]
    incs = np.diff(lat)
    assert np.allclose(incs, incs[0])
    # storage superlinear in K: increments grow
    stor = [s for _, _, s in k_rows]
    assert np.diff(stor, 2).min() > 0
    # same checks along C
    lat_c = [l for _, l, _ in c_rows]
    assert np.allclose(np.diff(lat_c), np.diff(lat_c)[0])
