"""Sharded multi-process serving vs. the single-process shared-model engine.

Not a paper figure — the scale-out check for the runtime: N access streams
partitioned across W OS worker processes, each worker a shared-model engine
over the **same** table hierarchy mapped zero-copy from shared memory
(`repro.runtime.sharded`). Three bars:

* **bit-identity** — every stream's emissions at every W must equal the
  single-process ``MultiStreamEngine`` output (the gate that keeps scaling
  from changing answers);
* **footprint** — the shared segment's size must be independent of W (the
  naive alternative stores W private copies of the tables);
* **scaling** — aggregate throughput W=1 -> W=4 must improve >= 1.5x *when
  the host actually has cores to scale onto* (>= 4 visible CPUs). On smaller
  hosts the ratio is still measured and recorded, but the gate is marked
  skipped — worker processes time-sharing one core cannot beat one process,
  and pretending otherwise would poison the committed trajectory.

Run standalone (writes the ``BENCH_sharded.json`` trajectory artifact)::

    PYTHONPATH=src python benchmarks/bench_sharded.py --accesses 10000

``--smoke`` (CI) shrinks to 4 streams x ~1.2k accesses at W in {1, 2}.
Future PRs compare their numbers against the committed history of this
artifact; keep the workload/seed stable.
"""

from __future__ import annotations

import argparse
import json
import os

from repro.data import PreprocessConfig, build_dataset
from repro.models import AttentionPredictor, ModelConfig
from repro.prefetch import DARTPrefetcher
from repro.runtime import serve_interleaved
from repro.tabularization import TableConfig, tabularize_predictor
from repro.traces import make_workload
from repro.utils import log

#: geometry kept small so the bench finishes in CI; ratios, not absolute
#: throughput, are the tracked quantity (same family as bench_multistream).
PREPROCESS = PreprocessConfig(history_len=8, window=6, delta_range=32)
MODEL = ModelConfig(layers=1, dim=16, heads=2, history_len=8, bitmap_size=64)
TABLE = TableConfig.uniform(16, 2)

SCALING_BAR = 1.5
MIN_CPUS_FOR_SCALING_GATE = 4


def build_dart(trace, train_samples: int = 800, seed: int = 0) -> DARTPrefetcher:
    """An untrained-but-real table hierarchy (weights don't matter for perf)."""
    ds = build_dataset(trace.pcs, trace.addrs, PREPROCESS, max_samples=train_samples)
    seg = PREPROCESS.segmenter()
    student = AttentionPredictor(MODEL, seg.n_addr_segments, seg.n_pc_segments, rng=seed)
    tabular, _ = tabularize_predictor(
        student, ds.x_addr, ds.x_pc, TABLE, fine_tune=False, rng=seed
    )
    return DARTPrefetcher(tabular, PREPROCESS, threshold=0.4, max_degree=2)


def make_streams(n: int, accesses: int, seed: int):
    scale = max(accesses / 348_000, 0.005) * 1.1  # libquantum is ~348k at scale 1
    return [
        make_workload("462.libquantum", scale=scale, seed=seed + i).slice(0, accesses)
        for i in range(n)
    ]


def run(
    accesses: int,
    n_streams: int,
    worker_counts: list[int],
    batch_size: int,
    max_wait: int,
    output: str | None,
    seed: int = 2,
    identity_accesses: int | None = None,
) -> dict:
    traces = make_streams(n_streams, accesses, seed)
    dart = build_dart(traces[0])
    cpus = os.cpu_count() or 1

    # Single-process baseline (the engine being scaled out).
    single = dart.multistream(batch_size=batch_size, max_wait=max_wait)
    single_agg, _, _ = serve_interleaved(single.streams(n_streams), traces)

    # Identity gate runs on a shorter prefix so the full sweep stays fast.
    id_len = min(accesses, identity_accesses or 3000)
    id_traces = [t.slice(0, id_len) for t in traces]
    id_engine = dart.multistream(batch_size=batch_size, max_wait=max_wait)
    _, _, ref_lists = serve_interleaved(
        id_engine.streams(n_streams), id_traces, collect=True
    )

    record: dict = {
        "workload": "462.libquantum",
        "seed": seed,
        "streams": n_streams,
        "accesses_per_stream": accesses,
        "batch_size": batch_size,
        "max_wait": max_wait,
        "cpus": cpus,
        "single_process": {**single_agg.to_dict(),
                          "predict_calls": single.predict_calls},
        "by_workers": {},
    }
    rows = [
        ["1 (in-proc)", f"{single_agg.throughput:,.0f}",
         f"{single_agg.p50_us:.1f}", f"{single_agg.p99_us:.1f}", "-", "-", "-"]
    ]
    shm_sizes = []
    for w in worker_counts:
        with dart.sharded(workers=w, batch_size=batch_size, max_wait=max_wait) as eng:
            agg, _, _ = eng.serve(traces, collect=False)
            stats = eng.stats()
        with dart.sharded(workers=w, batch_size=batch_size, max_wait=max_wait) as eng:
            _, _, lists = eng.serve(id_traces, collect=True)
        identical = all(lists[i] == ref_lists[i] for i in range(n_streams))
        shm_sizes.append(stats["shm_bytes"])
        naive_bytes = w * stats["shm_bytes"]
        record["by_workers"][str(w)] = {
            **agg.to_dict(),
            "engine": stats,
            "identical_to_single_process": identical,
            "shm_bytes": stats["shm_bytes"],
            "naive_w_copies_bytes": naive_bytes,
        }
        rows.append(
            [str(w), f"{agg.throughput:,.0f}", f"{agg.p50_us:.1f}",
             f"{agg.p99_us:.1f}", f"{stats['shm_bytes'] / 1024:.0f} KB",
             f"{naive_bytes / 1024:.0f} KB", str(identical)]
        )

    log.table(
        f"sharded serving of {n_streams} streams ({accesses:,} accesses each, "
        f"B={batch_size}, max_wait={max_wait}, {cpus} CPU(s) visible)",
        ["workers", "acc/s", "p50 us", "p99 us", "shm", "naive Wx", "identical"],
        rows,
    )

    record["all_identical"] = all(
        v["identical_to_single_process"] for v in record["by_workers"].values()
    )
    # Footprint: the segment is one copy of the tables no matter how many
    # workers map it.
    record["footprint_independent_of_workers"] = len(set(shm_sizes)) == 1
    w_lo, w_hi = str(min(worker_counts)), str(max(worker_counts))
    thr = {k: v["throughput"] for k, v in record["by_workers"].items()}
    scaling = thr[w_hi] / thr[w_lo] if thr[w_lo] else 0.0
    record["scaling_w%s_to_w%s" % (w_lo, w_hi)] = scaling
    gate_applies = cpus >= MIN_CPUS_FOR_SCALING_GATE and int(w_hi) >= 4
    record["scaling_bar"] = SCALING_BAR
    record["scaling_gate"] = (
        "enforced" if gate_applies
        else f"skipped ({cpus} CPU(s) visible; scale-out needs cores)"
    )
    scaling_ok = (scaling >= SCALING_BAR) if gate_applies else True
    ok = record["all_identical"] and record["footprint_independent_of_workers"] and scaling_ok
    record["pass"] = ok
    verdict = "PASS" if ok else "FAIL"
    print(
        f"[{verdict}] W={w_lo}->{w_hi}: {scaling:.2f}x throughput "
        f"(bar {SCALING_BAR}x, gate {record['scaling_gate']}), "
        f"bit-identical={record['all_identical']}, "
        f"shm footprint constant={record['footprint_independent_of_workers']} "
        f"({shm_sizes[0] / 1024:.0f} KB vs {max(worker_counts)}x for copies)"
    )
    if output:
        with open(output, "w", encoding="utf-8") as f:
            json.dump(record, f, indent=2, sort_keys=True)
        print(f"wrote {output}")
    return record


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--accesses", type=int, default=10_000, help="per stream")
    ap.add_argument("--streams", type=int, default=8)
    ap.add_argument("--workers", type=int, nargs="+", default=[1, 2, 4])
    ap.add_argument("--batch-size", type=int, default=64)
    ap.add_argument("--max-wait", type=int, default=16)
    ap.add_argument("--seed", type=int, default=2)
    ap.add_argument("--output", "-o", default="BENCH_sharded.json")
    ap.add_argument("--smoke", action="store_true",
                    help="tiny CI run: 4 streams, ~1.2k accesses, W in {1, 2}")
    args = ap.parse_args(argv)
    if args.smoke:
        args.accesses = 1200
        args.streams = 4
        args.workers = [1, 2]
        args.batch_size = 16
        args.max_wait = 4
    record = run(
        args.accesses, args.streams, args.workers, args.batch_size,
        args.max_wait, args.output, seed=args.seed,
    )
    return 0 if record["pass"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
