"""Table V — model configurations and complexity (latency / storage / ops).

Computes the analytic cost model for the paper's three designs:

* Teacher (L=4, D=256, H=8) and Student (L=1, D=32, H=2) under the systolic-
  array NN model,
* DART (student structure, K=128, C=2) under the tabular kernel model
  (Eqs. 16-23),

and checks the paper's headline reductions: ~99.99% fewer ops than the
teacher, >90% fewer than the student, >100x latency acceleration.
"""

from repro.models import ModelConfig, STUDENT_CONFIG, TEACHER_CONFIG
from repro.prefetch import (
    nn_ops,
    nn_storage_bits,
    nn_systolic_latency,
    tabular_model_latency,
    tabular_model_ops,
    tabular_model_storage_bits,
)
from repro.tabularization import TableConfig
from repro.utils import log


def bench_table5_complexity(benchmark):
    teacher = TEACHER_CONFIG.scaled(history_len=16, bitmap_size=256)
    student = STUDENT_CONFIG.scaled(history_len=16, bitmap_size=256)
    dart_model = ModelConfig(layers=1, dim=32, heads=2, history_len=16, bitmap_size=256)
    dart_table = TableConfig.uniform(128, 2)

    def compute():
        return {
            "Teacher": (
                nn_systolic_latency(teacher),
                nn_storage_bits(teacher) / 8,
                nn_ops(teacher),
            ),
            "Student": (
                nn_systolic_latency(student),
                nn_storage_bits(student) / 8,
                nn_ops(student),
            ),
            "DART": (
                tabular_model_latency(dart_model, dart_table),
                tabular_model_storage_bits(dart_model, dart_table) / 8,
                tabular_model_ops(dart_model, dart_table),
            ),
        }

    costs = benchmark(compute)
    paper = {
        "Teacher": (16_500, 86.2e6, 98.3e6),
        "Student": (908, 827.4e3, 134.7e3),
        "DART": (97, 864.4e3, 11.0e3),
    }
    rows = []
    for name, (lat, stor, ops) in costs.items():
        p = paper[name]
        rows.append(
            [
                name,
                f"{lat:,.0f} / {p[0]:,}",
                f"{stor / 1024:,.1f}K / {p[1] / 1024:,.1f}K",
                f"{ops:,.0f} / {p[2]:,.0f}",
            ]
        )
    log.table(
        "Table V: complexity, ours/paper", ["model", "latency (cyc)", "storage (B)", "ops"], rows
    )
    lat_t, _, ops_t = costs["Teacher"]
    lat_s, _, ops_s = costs["Student"]
    lat_d, _, ops_d = costs["DART"]
    assert 1 - ops_d / ops_t > 0.999  # paper: 99.99% reduction
    assert 1 - ops_d / ops_s > 0.90  # paper: 91.83%
    assert lat_t / lat_d > 100  # paper: 170x
    assert lat_s / lat_d > 5  # paper: 9.4x
