"""Ablations over the design choices DESIGN.md calls out.

1. **Encoder**: exact nearest-prototype vs log2(K) hash tree (the paper's
   latency model assumes the hash encoder; how much F1 does it cost?).
2. **Fine-tune solver**: closed-form least squares vs the paper's E-epoch SGD.
3. **Attention surrogate**: softmax student vs sigmoid-attention student
   (Eq. 14 bakes sigmoid into the QKV table; does training the student with
   sigmoid attention shrink the tabularization gap?).
4. **Future work — layer fusion** (paper Sec. VIII): FFN block as one fused
   table vs two linear kernels: latency halves, accuracy drops with C.
"""

import numpy as np

from conftest import DART_TABLE, PREPROCESS, STUDENT_MODEL, get_tabular, tabular_f1

from repro.core.evaluate import f1_score
from repro.distillation import TrainConfig, train_model
from repro.models import AttentionPredictor
from repro.tabularization import TableConfig, tabularize_predictor
from repro.tabularization.fused import FusedFunctionTable
from repro.utils import log


def _pick_app(suite):
    for app in ("410.bwaves", "462.libquantum"):
        if app in suite:
            return suite[app]
    return next(iter(suite.values()))


def bench_ablation_encoder(benchmark, suite):
    art = _pick_app(suite)

    def run():
        out = {}
        for enc in ("exact", "hash"):
            table = TableConfig(
                *(getattr(DART_TABLE, f) for f in (
                    "k_input", "c_input", "k_attn", "c_attn",
                    "k_ffn", "c_ffn", "k_output", "c_output")),
                encoder=enc,
            )
            tab, _ = get_tabular(art, fine_tune=True, table=table, tag=f"enc:{enc}")
            out[enc] = tabular_f1(art, tab)
        return out

    f1s = benchmark.pedantic(run, rounds=1, iterations=1)
    log.table(
        f"Ablation: PQ encoder ({art.name})",
        ["encoder", "F1"],
        [[k, f"{v:.3f}"] for k, v in f1s.items()],
    )
    # the hash encoder trades accuracy for log(K) latency; it must stay usable
    assert f1s["hash"] > 0.3 * f1s["exact"]


def bench_ablation_finetune_solver(benchmark, suite):
    art = _pick_app(suite)

    def run():
        out = {}
        for solver in ("lstsq", "sgd"):
            tab, _ = tabularize_predictor(
                art.student, art.ds_train.x_addr, art.ds_train.x_pc,
                DART_TABLE, fine_tune=True, ft_solver=solver, ft_epochs=20, rng=7,
            )
            out[solver] = tabular_f1(art, tab)
        return out

    f1s = benchmark.pedantic(run, rounds=1, iterations=1)
    log.table(
        f"Ablation: fine-tune solver ({art.name})",
        ["solver", "F1"],
        [[k, f"{v:.3f}"] for k, v in f1s.items()],
    )
    assert abs(f1s["lstsq"] - f1s["sgd"]) < 0.15  # same objective, same story


def bench_ablation_sigmoid_attention_student(benchmark, suite):
    """Does a sigmoid-attention student tabularize with a smaller F1 gap?"""
    art = _pick_app(suite)

    def run():
        cfg = STUDENT_MODEL.scaled(score_mode="sigmoid")
        student = AttentionPredictor(
            cfg, art.ds_train.x_addr.shape[2], art.ds_train.x_pc.shape[2], rng=21
        )
        train_model(
            student, art.ds_train, art.ds_val,
            TrainConfig(epochs=4, batch_size=128, lr=2e-3, seed=21),
        )
        f1_nn = f1_score(
            art.ds_val.labels, student.predict_proba(art.ds_val.x_addr, art.ds_val.x_pc)
        )
        tab, _ = tabularize_predictor(
            student, art.ds_train.x_addr, art.ds_train.x_pc, DART_TABLE,
            fine_tune=True, rng=22,
        )
        f1_tab = tabular_f1(art, tab)
        # softmax baseline from the shared artifacts
        tab_soft, _ = get_tabular(art, fine_tune=True, table=DART_TABLE)
        return {
            "softmax student": art.f1["student"],
            "softmax DART": tabular_f1(art, tab_soft),
            "sigmoid student": f1_nn,
            "sigmoid DART": f1_tab,
        }

    f1s = benchmark.pedantic(run, rounds=1, iterations=1)
    log.table(
        f"Ablation: attention surrogate ({art.name})",
        ["model", "F1"],
        [[k, f"{v:.3f}"] for k, v in f1s.items()],
    )
    assert f1s["sigmoid DART"] > 0.0


def bench_ablation_fused_ffn_table(benchmark, suite):
    """Paper Sec. VIII future work: one fused table for the whole FFN block."""
    art = _pick_app(suite)
    student = art.student
    enc = student.encoders[0]
    acts = student.trunk_activations(art.ds_train.x_addr, art.ds_train.x_pc)
    x_in = acts["enc0/post_ln1"]
    target = acts["enc0/ffn_out"]
    dim = student.config.dim

    def ffn(rows):
        hidden = np.maximum(rows @ enc.ffn.lin1.weight.value.T + enc.ffn.lin1.bias.value, 0.0)
        return hidden @ enc.ffn.lin2.weight.value.T + enc.ffn.lin2.bias.value

    def run():
        out = {}
        for c in (1, 2, 4):
            fused = FusedFunctionTable.train(
                ffn, x_in, dim, dim, n_prototypes=128, n_subspaces=c, rng=0
            )
            approx = fused.query(x_in)
            err = float(np.abs(approx - target).mean() / (np.abs(target).mean() + 1e-12))
            out[c] = (err, fused.latency_cycles())
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    two_kernel_latency = 2 * (np.log2(128) + np.log2(2) + 1)
    rows = [
        [f"C={c}", f"{err:.3f}", f"{lat:.0f}", f"{two_kernel_latency:.0f}"]
        for c, (err, lat) in results.items()
    ]
    log.table(
        f"Ablation: fused FFN table ({art.name}) — rel. error and latency "
        "vs the two-kernel path",
        ["config", "rel err", "fused latency", "2-kernel latency"],
        rows,
    )
    # fused halves latency; error grows with C (nonlinearity vs additivity)
    assert results[1][1] < two_kernel_latency
    assert results[4][0] >= results[1][0] - 0.05


def bench_ablation_decode_policy(benchmark, suite, profile):
    """Timeliness-major vs confidence-major prefetch decode.

    The delta bitmap's look-forward window is the predictor's only lookahead;
    picking the *farthest* above-threshold deltas ("distance") buys
    timeliness at a small accuracy cost, while picking the most probable ones
    ("confidence") tends to select near deltas whose prefetches land late.
    """
    from repro.prefetch import DARTPrefetcher
    from repro.sim import SimConfig, ipc_improvement, simulate
    from repro.traces import make_workload

    art = _pick_app(suite)
    tab, _ = get_tabular(art, fine_tune=True, table=DART_TABLE)
    trace = make_workload(art.name, scale=profile.sim_trace_scale, seed=2)
    cfg = SimConfig()

    def run():
        base = simulate(trace, None, cfg)
        out = {}
        for decode in ("distance", "confidence"):
            pf = DARTPrefetcher(tab, PREPROCESS, name=f"DART[{decode}]", decode=decode)
            r = simulate(trace, pf, cfg)
            out[decode] = (
                ipc_improvement(r, base),
                r.accuracy,
                r.coverage(base.demand_misses),
            )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    log.table(
        f"Ablation: decode policy ({art.name})",
        ["decode", "IPC gain", "accuracy", "coverage"],
        [[k, f"{v[0]:+.3f}", f"{v[1]:.3f}", f"{v[2]:.3f}"] for k, v in results.items()],
    )
    # timeliness-major decode must not lose to confidence-major on IPC
    assert results["distance"][0] >= results["confidence"][0] - 0.02


def bench_ablation_prefetch_filter(benchmark, suite, profile):
    """Request dedup filter: how redundant is the bitmap prefetcher's stream?"""
    from repro.prefetch import DARTPrefetcher, FilteredPrefetcher
    from repro.sim import SimConfig, ipc_improvement, simulate
    from repro.traces import make_workload

    art = _pick_app(suite)
    tab, _ = get_tabular(art, fine_tune=True, table=DART_TABLE)
    trace = make_workload(art.name, scale=profile.sim_trace_scale, seed=2)
    cfg = SimConfig()

    def run():
        base = simulate(trace, None, cfg)
        raw = DARTPrefetcher(tab, PREPROCESS)
        filt = FilteredPrefetcher(DARTPrefetcher(tab, PREPROCESS), window=2048)
        r_raw = simulate(trace, raw, cfg)
        r_filt = simulate(trace, filt, cfg)
        return {
            "raw": (ipc_improvement(r_raw, base), None),
            "filtered": (ipc_improvement(r_filt, base), filt.redundancy),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    log.table(
        f"Ablation: prefetch dedup filter ({art.name})",
        ["variant", "IPC gain", "stream redundancy"],
        [
            ["raw", f"{results['raw'][0]:+.3f}", "-"],
            ["filtered", f"{results['filtered'][0]:+.3f}", f"{results['filtered'][1]:.1%}"],
        ],
    )
    # dedup must not change useful prefetching (duplicates die at the cache)
    assert abs(results["filtered"][0] - results["raw"][0]) < 0.05
