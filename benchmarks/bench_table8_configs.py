"""Table VIII — configurator outputs under the paper's design constraints.

Runs the latency-major greedy configurator with the paper's three budget
pairs and prints the chosen designs next to the paper's. Our latency tiers
(57 / 97 / 181 cycles) match the paper's 57 / 97 / 191 within the documented
LayerNorm-constant uncertainty; at tau=100 two designs tie at 97 cycles and
the storage-greedy rule picks the higher-storage one.
"""

from repro.prefetch import configure_dart
from repro.utils import log

PAPER_ROWS = {
    "DART-S": ((60, 30_000), "(1, 16, 2, 16, 1)", 57, "29.9K"),
    "DART": ((100, 1_000_000), "(1, 32, 2, 128, 2)", 97, "864.4K"),
    "DART-L": ((200, 4_000_000), "(2, 32, 2, 256, 2)", 191, "3.75M"),
}


def bench_table8_configurator(benchmark):
    def run():
        return {
            name: configure_dart(tau, s)
            for name, ((tau, s), *_rest) in PAPER_ROWS.items()
        }

    chosen = benchmark(run)
    rows = []
    for name, ((tau, s), p_cfg, p_lat, p_stor) in PAPER_ROWS.items():
        c = chosen[name]
        ours = (
            f"({c.model.layers}, {c.model.dim}, {c.model.heads}, "
            f"{c.table.k_input}, {c.table.c_input})"
        )
        rows.append(
            [
                name,
                f"{tau}, {s / 1000:.0f}K",
                f"{ours} / {p_cfg}",
                f"{c.latency_cycles:.0f} / {p_lat}",
                f"{c.storage_bytes / 1024:.1f}K / {p_stor}",
            ]
        )
    log.table(
        "Table VIII: configurations under design constraints (ours / paper)",
        ["prefetcher", "constraints (tau, s)", "(L, D, H, K, C)", "latency", "storage"],
        rows,
    )
    for name, ((tau, s), *_r) in PAPER_ROWS.items():
        assert chosen[name].latency_cycles < tau
        assert chosen[name].storage_bytes < s
