"""Residual PQ ablation — the quantizer-side route past Fig. 8's plateau.

Fig. 8 flattens past K ≈ 512 because single-stage prototype *resolution*,
not count, becomes the limit. Residual PQ stacks stages over reconstruction
error: at matched table storage (M stages × K prototypes vs one stage of
M·K), multi-stage quantization must win on full-rank data, paying only the
sequential-encode latency the cost model charges.
"""

import numpy as np

from repro.quantization import ProductQuantizer, ResidualProductQuantizer
from repro.utils import log


def _activations(n=3000, d=32, seed=0):
    """Full-rank correlated data — the regime where prototype count saturates."""
    rng = np.random.default_rng(seed)
    basis = rng.standard_normal((d, d))
    return rng.standard_normal((n, d)) @ basis * 0.3


def bench_residual_pq_matched_storage(benchmark):
    x = _activations()

    def run():
        rows = []
        for stages, k in ((1, 64), (2, 32), (4, 16)):  # equal total table rows
            rpq = ResidualProductQuantizer(32, 4, k, n_stages=stages, rng=0).fit(x)
            rows.append((stages, k, rpq.quantization_error(x), rpq.latency_cycles()))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    log.table(
        "Residual PQ at matched storage (C=4, 64 table rows total)",
        ["stages", "K/stage", "MSE", "latency (cycles)"],
        [[str(m), str(k), f"{e:.5f}", f"{l:.1f}"] for m, k, e, l in rows],
    )
    errors = [e for _, _, e, _ in rows]
    lats = [l for _, _, _, l in rows]
    # More stages: strictly better reconstruction, strictly more latency.
    assert errors[1] < errors[0]
    assert lats[0] < lats[1] < lats[2]


def bench_residual_pq_error_decay(benchmark):
    x = _activations(seed=1)

    def run():
        return [
            ResidualProductQuantizer(32, 4, 16, n_stages=m, rng=0).fit(x).quantization_error(x)
            for m in (1, 2, 3, 4)
        ]

    errs = benchmark.pedantic(run, rounds=1, iterations=1)
    log.table(
        "Residual PQ error vs stages (K=16, C=4)",
        ["stages", "MSE"],
        [[str(m + 1), f"{e:.5f}"] for m, e in enumerate(errs)],
    )
    assert all(a > b for a, b in zip(errs, errs[1:]))  # monotone decay
    assert errs[-1] < 0.35 * errs[0]  # roughly geometric