"""Detailed-substrate ablations: full hierarchy, banked DRAM, multicore.

The paper's results come from the flat LLC simulator; these benches check
that its conclusions survive the detailed substrate (and quantify effects the
flat model abstracts away):

* paging — ChampSim-style random frame allocation vs. contiguous frames:
  page scattering must cost DRAM row locality;
* prefetching in the hierarchy — a rule-based prefetcher's win must persist
  when L1/L2 filtering, write-backs and banked DRAM are modeled;
* multicore — an LLC-hungry 2-core mix must show contention (weighted
  speedup < n), and per-core prefetching must raise aggregate IPC.
"""

from repro.prefetch import BestOffsetPrefetcher, StreamPrefetcher
from repro.sim import HierarchyConfig, ipc_improvement, simulate_hierarchy
from repro.sim.multicore import simulate_multicore
from repro.traces import make_workload
from repro.utils import log


def bench_hierarchy_paging_row_locality(benchmark, profile):
    app = "462.libquantum"  # streaming: maximal row locality to destroy
    trace = make_workload(app, scale=profile.sim_trace_scale, seed=2)

    def run():
        paged = simulate_hierarchy(trace, None, HierarchyConfig(paging=True))
        contig = simulate_hierarchy(trace, None, HierarchyConfig(paging=False))
        return paged, contig

    paged, contig = benchmark.pedantic(run, rounds=1, iterations=1)
    log.table(
        f"Paging vs. contiguous frames on {app}",
        ["allocation", "DRAM row hit", "IPC", "LLC hit"],
        [
            ["paged", f"{paged.dram['row_hit_rate']:.2%}", f"{paged.sim.ipc:.3f}",
             f"{paged.llc.hit_rate:.2%}"],
            ["contiguous", f"{contig.dram['row_hit_rate']:.2%}", f"{contig.sim.ipc:.3f}",
             f"{contig.llc.hit_rate:.2%}"],
        ],
    )
    assert paged.dram["row_hit_rate"] <= contig.dram["row_hit_rate"]
    assert paged.sim.ipc <= contig.sim.ipc * 1.02  # scattering can't help


def bench_hierarchy_prefetch_win_persists(benchmark, profile):
    apps = profile.sim_apps[: min(2, len(profile.sim_apps))]
    cfg = HierarchyConfig()

    def run():
        out = {}
        for app in apps:
            trace = make_workload(app, scale=profile.sim_trace_scale, seed=2)
            base = simulate_hierarchy(trace, None, cfg)
            r = simulate_hierarchy(trace, BestOffsetPrefetcher(), cfg)
            out[app] = (ipc_improvement(r.sim, base.sim), r.sim.accuracy, r.llc.hit_rate)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    log.table(
        "BO in the full hierarchy (L1/L2 filtering + banked DRAM + paging)",
        ["app", "IPC improvement", "accuracy", "LLC hit rate"],
        [[a, f"{v[0]:+.1%}", f"{v[1]:.2%}", f"{v[2]:.2%}"] for a, v in results.items()],
    )
    # The paper's qualitative claim must survive the detailed model: a good
    # rule-based prefetcher helps on average across apps.
    mean_imp = sum(v[0] for v in results.values()) / len(results)
    assert mean_imp > 0.0


def bench_multicore_contention_and_prefetch(benchmark, profile):
    mix = ["462.libquantum", "602.gcc"]
    cfg = HierarchyConfig()
    traces = [make_workload(w, scale=profile.sim_trace_scale / 2, seed=2) for w in mix]

    def run():
        alone = [simulate_multicore([t], config=cfg).cores[0] for t in traces]
        shared = simulate_multicore(traces, config=cfg)
        with_pf = simulate_multicore(
            traces, prefetchers=[StreamPrefetcher() for _ in traces], config=cfg
        )
        return alone, shared, with_pf

    alone, shared, with_pf = benchmark.pedantic(run, rounds=1, iterations=1)
    ws = shared.weighted_speedup(alone)
    ws_pf = with_pf.weighted_speedup(alone)
    log.table(
        f"{len(mix)}-core mix (shared LLC + DRAM)",
        ["configuration", "weighted speedup", "aggregate IPC"],
        [
            ["no prefetch", f"{ws:.2f} / {len(mix)}.00", f"{shared.aggregate_ipc:.3f}"],
            ["Streamer per core", f"{ws_pf:.2f}", f"{with_pf.aggregate_ipc:.3f}"],
        ],
    )
    assert ws <= len(mix) + 0.05  # sharing can't beat running alone
    assert with_pf.aggregate_ipc > shared.aggregate_ipc  # prefetching helps the mix
