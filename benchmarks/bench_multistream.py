"""Shared-model multi-stream serving vs. per-stream batching.

Not a paper figure — the deployment-side check for the multi-tenant runtime:
N concurrent access streams (cores / clients / trace shards) served from
**one** shared table model with cross-stream micro-batching must (a) stay
bit-identical to solo single-stream serving, and (b) actually coalesce —
under a latency deadline (``max_wait``) the shared engine must issue at
least 2x fewer ``predict_proba`` calls at N >= 4 streams than N independent
per-stream batchers at the same ``B`` (per-stream batchers flush small
deadline-bound bursts; the shared batch fills N× faster).

Run standalone (writes the ``BENCH_multistream.json`` trajectory artifact)::

    PYTHONPATH=src python benchmarks/bench_multistream.py --accesses 20000

``--smoke`` (CI) shrinks everything to a 2-stream, ~1.5k-access run — at 2
streams the coalescing ceiling is 2x, so the smoke gate only checks >1x plus
bit-identity; the full run gates 2x at the largest stream count.

Future PRs compare their numbers against the committed history of this
artifact; keep the workload/seed stable.
"""

from __future__ import annotations

import argparse
import json

from repro.data import PreprocessConfig, build_dataset
from repro.models import AttentionPredictor, ModelConfig
from repro.prefetch import DARTPrefetcher
from repro.runtime import BatchAdapter, serve_interleaved
from repro.tabularization import TableConfig, tabularize_predictor
from repro.traces import make_workload
from repro.utils import log

#: geometry kept small so the bench finishes in CI; call-count ratios, not
#: absolute throughput, are the tracked quantity.
PREPROCESS = PreprocessConfig(history_len=8, window=6, delta_range=32)
MODEL = ModelConfig(layers=1, dim=16, heads=2, history_len=8, bitmap_size=64)
TABLE = TableConfig.uniform(16, 2)


def build_dart(trace, train_samples: int = 800, seed: int = 0) -> DARTPrefetcher:
    """An untrained-but-real table hierarchy (weights don't matter for perf)."""
    ds = build_dataset(trace.pcs, trace.addrs, PREPROCESS, max_samples=train_samples)
    seg = PREPROCESS.segmenter()
    student = AttentionPredictor(MODEL, seg.n_addr_segments, seg.n_pc_segments, rng=seed)
    tabular, _ = tabularize_predictor(
        student, ds.x_addr, ds.x_pc, TABLE, fine_tune=False, rng=seed
    )
    return DARTPrefetcher(tabular, PREPROCESS, threshold=0.4, max_degree=2)


def make_streams(n: int, accesses: int, seed: int):
    """N genuinely different access streams (distinct generator seeds)."""
    scale = max(accesses / 348_000, 0.005) * 1.1  # libquantum is ~348k at scale 1
    return [
        make_workload("462.libquantum", scale=scale, seed=seed + i).slice(0, accesses)
        for i in range(n)
    ]


def run(
    accesses: int,
    stream_counts: list[int],
    batch_size: int,
    max_wait: int,
    output: str | None,
    seed: int = 2,
) -> dict:
    traces_all = make_streams(max(stream_counts), accesses, seed)
    dart = build_dart(traces_all[0])

    record: dict = {
        "workload": "462.libquantum",
        "seed": seed,
        "accesses_per_stream": accesses,
        "batch_size": batch_size,
        "max_wait": max_wait,
        "by_streams": {},
    }
    rows = []
    for n in stream_counts:
        traces = traces_all[:n]
        engine = dart.multistream(batch_size=batch_size, max_wait=max_wait)
        shared_agg, _, shared_lists = serve_interleaved(
            engine.streams(n), traces, collect=True
        )
        shared_calls = engine.predict_calls

        solos = [dart.stream(batch_size=batch_size, max_wait=max_wait) for _ in range(n)]
        solo_agg, _, _ = serve_interleaved(solos, traces)
        solo_calls = sum(s.predict_calls for s in solos)

        # Equivalence bar: every stream bit-identical to its solo batch run.
        identical = all(
            shared_lists[i]
            == BatchAdapter(dart.stream(batch_size=batch_size)).prefetch_lists(traces[i])
            for i in range(n)
        )
        ratio = solo_calls / shared_calls if shared_calls else float("inf")
        record["by_streams"][str(n)] = {
            "shared": {**shared_agg.to_dict(), "predict_calls": shared_calls,
                       **{f"engine_{k}": v for k, v in engine.stats().items()}},
            "per_stream": {**solo_agg.to_dict(), "predict_calls": solo_calls},
            "calls_per_stream_over_shared": ratio,
            "identical_to_solo": identical,
        }
        rows.append([
            str(n),
            f"{shared_agg.throughput:,.0f}", f"{shared_agg.p50_us:.1f}", f"{shared_agg.p99_us:.1f}",
            f"{solo_agg.throughput:,.0f}", f"{solo_agg.p50_us:.1f}", f"{solo_agg.p99_us:.1f}",
            f"{shared_calls}", f"{solo_calls}", f"{ratio:.2f}x", str(identical),
        ])

    log.table(
        f"shared-model vs per-stream serving ({accesses:,} accesses/stream, "
        f"B={batch_size}, max_wait={max_wait})",
        ["streams", "shared acc/s", "p50", "p99",
         "solo acc/s", "p50", "p99", "shared calls", "solo calls", "ratio", "identical"],
        rows,
    )
    n_max = max(stream_counts)
    top = record["by_streams"][str(n_max)]
    record["max_streams"] = n_max
    record["best_call_ratio"] = top["calls_per_stream_over_shared"]
    record["all_identical"] = all(
        v["identical_to_solo"] for v in record["by_streams"].values()
    )
    # At 2 streams the coalescing ceiling is 2x; only gate the 2x bar when
    # the run includes >= 4 streams (the acceptance configuration).
    ratio_bar = 2.0 if n_max >= 4 else 1.0
    ok = record["all_identical"] and record["best_call_ratio"] > ratio_bar
    record["pass"] = ok
    verdict = "PASS" if ok else "FAIL"
    print(
        f"[{verdict}] {n_max} streams: {record['best_call_ratio']:.2f}x fewer "
        f"predict calls (bar {ratio_bar}x), bit-identical={record['all_identical']}"
    )
    if output:
        with open(output, "w", encoding="utf-8") as f:
            json.dump(record, f, indent=2, sort_keys=True)
        print(f"wrote {output}")
    return record


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--accesses", type=int, default=20_000, help="per stream")
    ap.add_argument("--streams", type=int, nargs="+", default=[1, 2, 4, 8])
    ap.add_argument("--batch-size", type=int, default=64)
    ap.add_argument("--max-wait", type=int, default=16)
    ap.add_argument("--seed", type=int, default=2)
    ap.add_argument("--output", "-o", default="BENCH_multistream.json")
    ap.add_argument("--smoke", action="store_true",
                    help="tiny CI run: 2 streams, ~1.5k accesses each")
    args = ap.parse_args(argv)
    if args.smoke:
        args.accesses = 1500
        args.streams = [1, 2]
        args.batch_size = 16
        args.max_wait = 4
    record = run(
        args.accesses, args.streams, args.batch_size, args.max_wait,
        args.output, seed=args.seed,
    )
    return 0 if record["pass"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
