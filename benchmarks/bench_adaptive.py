"""Feedback-directed throttling and hybrid prefetching ablations.

Beyond-the-paper system components measured the way the paper measures
prefetchers (same traces, same simulator, IPC/accuracy):

* **FDP** — dynamic degree control must clamp a junk predictor to the floor,
  open up a perfect one, and track a fixed well-tuned degree within a few
  percent on real workloads (the point of FDP is robustness, not peak).
* **Hybrid** — a Streamer+BO composite must be at least as good as the
  weaker constituent on every app and competitive with the stronger one.
"""

from repro.prefetch import (
    BestOffsetPrefetcher,
    CompositePrefetcher,
    FeedbackThrottle,
    StreamPrefetcher,
    ThrottleConfig,
)
from repro.sim import SimConfig, ipc_improvement, simulate
from repro.traces import make_workload
from repro.utils import log


def bench_fdp_robustness(benchmark, profile):
    apps = profile.sim_apps
    cfg = SimConfig()

    def run():
        out = {}
        for app in apps:
            trace = make_workload(app, scale=profile.sim_trace_scale, seed=2)
            base = simulate(trace, None, cfg)
            fixed = simulate(trace, BestOffsetPrefetcher(), cfg)
            throttle = FeedbackThrottle(ThrottleConfig(initial_degree=2, max_degree=8))
            fdp = simulate(trace, BestOffsetPrefetcher(), cfg, throttle=throttle)
            out[app] = (
                ipc_improvement(fixed, base),
                ipc_improvement(fdp, base),
                fdp.extra["throttle"]["final_degree"],
                fdp.extra["throttle"]["pollution_events"],
            )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    log.table(
        "FDP (dynamic degree) vs fixed-degree BO",
        ["app", "fixed ΔIPC", "FDP ΔIPC", "final degree", "pollution events"],
        [[a, f"{v[0]:+.1%}", f"{v[1]:+.1%}", str(v[2]), str(v[3])] for a, v in results.items()],
    )
    for app, (fixed, fdp, degree, _) in results.items():
        assert 1 <= degree <= 8
        # Robustness: FDP keeps most of a well-tuned fixed design's win and
        # never turns a win into a loss.
        if fixed > 0.02:
            assert fdp > 0.0, f"FDP lost the win on {app}"


def bench_hybrid_vs_constituents(benchmark, profile):
    apps = profile.sim_apps
    cfg = SimConfig()

    def run():
        out = {}
        for app in apps:
            trace = make_workload(app, scale=profile.sim_trace_scale, seed=2)
            base = simulate(trace, None, cfg)
            streamer = ipc_improvement(simulate(trace, StreamPrefetcher(), cfg), base)
            bo = ipc_improvement(simulate(trace, BestOffsetPrefetcher(), cfg), base)
            hybrid = CompositePrefetcher(
                [StreamPrefetcher(), BestOffsetPrefetcher()], max_degree=4
            )
            hy = ipc_improvement(simulate(trace, hybrid, cfg), base)
            out[app] = (streamer, bo, hy)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    log.table(
        "Hybrid (Streamer+BO) vs constituents",
        ["app", "Streamer", "BO", "Hybrid"],
        [[a, f"{v[0]:+.1%}", f"{v[1]:+.1%}", f"{v[2]:+.1%}"] for a, v in results.items()],
    )
    for app, (streamer, bo, hy) in results.items():
        assert hy >= min(streamer, bo) - 0.05, f"hybrid below both constituents on {app}"
