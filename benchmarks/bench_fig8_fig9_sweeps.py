"""Figures 8 & 9 — DART F1 versus prototypes K and subspaces C.

Expected shapes (paper): F1 rises with K (strongly past K~128; K=1024 beats
K=16 by ~10.9%) and rises mildly with C (C=8 beats C=1 by ~6.6%).
"""

import numpy as np

from conftest import get_tabular, tabular_f1

from repro.tabularization import TableConfig
from repro.utils import log


def bench_fig8_prototype_sweep(benchmark, suite, profile):
    apps = [a for a in profile.sweep_apps if a in suite]

    def sweep():
        series = {}
        for k in profile.k_sweep:
            f1s = []
            for app in apps:
                art = suite[app]
                tab, _ = get_tabular(art, fine_tune=True, table=TableConfig.uniform(k, 2))
                f1s.append(tabular_f1(art, tab))
            series[k] = float(np.mean(f1s))
        return series

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[f"K={k}", f"{v:.3f}"] for k, v in series.items()]
    log.table(
        f"Fig. 8: mean F1 vs prototypes K (C=2, apps={apps})", ["K", "mean F1"], rows
    )
    ks = sorted(series)
    assert series[ks[-1]] >= series[ks[0]] - 0.01  # rising trend in K


def bench_fig9_subspace_sweep(benchmark, suite, profile):
    apps = [a for a in profile.sweep_apps if a in suite]

    def sweep():
        series = {}
        for c in profile.c_sweep:
            f1s = []
            for app in apps:
                art = suite[app]
                tab, _ = get_tabular(art, fine_tune=True, table=TableConfig.uniform(128, c))
                f1s.append(tabular_f1(art, tab))
            series[c] = float(np.mean(f1s))
        return series

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[f"C={c}", f"{v:.3f}"] for c, v in series.items()]
    log.table(
        f"Fig. 9: mean F1 vs subspaces C (K=128, apps={apps})", ["C", "mean F1"], rows
    )
    cs = sorted(series)
    assert series[cs[-1]] >= series[cs[0]] - 0.02  # mild rising trend in C
