"""Table VII — F1 of DART with vs without layer fine-tuning.

Expected shape (paper): DART(FT) mean F1 exceeds DART w/o FT (0.699 vs 0.661)
and trails the student slightly (paper: -0.084).
"""

import numpy as np

from conftest import DART_TABLE, get_tabular, tabular_f1

from repro.utils import log


def bench_table7_fine_tuning(benchmark, suite, profile):
    def collect():
        rows, f1_ft, f1_no, f1_stu = [], [], [], []
        for app, art in suite.items():
            tab_no, _ = get_tabular(art, fine_tune=False, table=DART_TABLE)
            tab_ft, _ = get_tabular(art, fine_tune=True, table=DART_TABLE)
            a = tabular_f1(art, tab_no)
            b = tabular_f1(art, tab_ft)
            rows.append([app, f"{a:.3f}", f"{b:.3f}", f"{art.f1['student']:.3f}"])
            f1_no.append(a)
            f1_ft.append(b)
            f1_stu.append(art.f1["student"])
        rows.append(
            ["Mean", f"{np.mean(f1_no):.3f}", f"{np.mean(f1_ft):.3f}", f"{np.mean(f1_stu):.3f}"]
        )
        return rows, float(np.mean(f1_no)), float(np.mean(f1_ft)), float(np.mean(f1_stu))

    rows, mean_no, mean_ft, mean_stu = benchmark.pedantic(collect, rounds=1, iterations=1)
    log.table(
        "Table VII: F1 — DART w/o FT / DART / student "
        "(paper means: 0.661 / 0.699 / 0.783)",
        ["app", "DART w/o FT", "DART", "student"],
        rows,
    )
    assert mean_ft >= mean_no - 0.01  # fine-tuning must not hurt on average
    assert mean_stu >= mean_ft - 0.15  # tabularization costs a bounded drop
