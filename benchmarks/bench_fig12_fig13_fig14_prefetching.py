"""Figures 12, 13, 14 — prefetch accuracy, coverage, and IPC improvement.

One shared simulation campaign (the ``sim_results`` fixture) feeds all three
figures, mirroring how the paper derives them from the same ChampSim runs.

Expected shapes (paper):
* accuracy: ideal NN prefetchers highest; with latency enabled TransFetch and
  especially Voyager collapse; DART variants stay high (Fig. 12);
* coverage: TransFetch-I ~ DART > BO; latency-afflicted NN prefetchers drop
  to near zero (Fig. 13);
* IPC: DART variants > BO > ISB and > latency-afflicted TransFetch/Voyager,
  with ideal variants bracketing from above (Fig. 14).
"""

import numpy as np

from conftest import PREFETCHER_ORDER

from repro.sim import ipc_improvement
from repro.utils import log


def _mean_over_apps(sim_results, metric):
    out = {}
    for name in PREFETCHER_ORDER:
        vals = []
        for app in sim_results["apps"]:
            run = sim_results["runs"].get((app, name))
            if run is None:
                continue
            vals.append(metric(app, run))
        if vals:
            out[name] = float(np.mean(vals))
    return out


def bench_fig12_prefetch_accuracy(benchmark, sim_results):
    acc = benchmark.pedantic(
        lambda: _mean_over_apps(sim_results, lambda app, r: r.accuracy),
        rounds=1, iterations=1,
    )
    log.table(
        "Fig. 12: prefetch accuracy (mean over apps; paper: BO .894, "
        "TransFetch .786, Voyager .499, DART .807)",
        ["prefetcher", "accuracy"],
        [[n, f"{v:.3f}"] for n, v in acc.items()],
    )
    assert acc["DART"] > acc["Voyager"]  # latency destroys Voyager's accuracy


def bench_fig13_prefetch_coverage(benchmark, sim_results):
    def metric(app, r):
        return r.coverage(sim_results["baseline"][app].demand_misses)

    cov = benchmark.pedantic(
        lambda: _mean_over_apps(sim_results, metric), rounds=1, iterations=1
    )
    log.table(
        "Fig. 13: prefetch coverage (mean over apps; paper: DART .510, "
        "TransFetch .144, Voyager .021)",
        ["prefetcher", "coverage"],
        [[n, f"{v:.3f}"] for n, v in cov.items()],
    )
    assert cov["DART"] > cov["Voyager"]
    assert cov["DART"] > cov["TransFetch"]  # latency kills coverage


def bench_fig14_ipc_improvement(benchmark, sim_results):
    def metric(app, r):
        return ipc_improvement(r, sim_results["baseline"][app])

    imps = benchmark.pedantic(
        lambda: _mean_over_apps(sim_results, metric), rounds=1, iterations=1
    )
    log.table(
        "Fig. 14: IPC improvement (mean over apps; paper: DART-S .354, "
        "DART .376, DART-L .385, BO .315, ISB .016, TransFetch .045, "
        "Voyager .004, TransFetch-I .409)",
        ["prefetcher", "IPC improvement"],
        [[n, f"{v:+.3f}"] for n, v in imps.items()],
    )
    # The paper's headline orderings:
    assert imps["DART"] > imps["ISB"]
    assert imps["DART"] > imps["TransFetch"]  # +33.1% in the paper
    assert imps["DART"] > imps["Voyager"]  # +37.2% in the paper
    assert imps["DART"] >= imps["BO"] - 0.03  # comparable-or-better vs BO
