"""Table VI — F1 of teacher vs student without KD vs student with KD.

Expected shape (paper): mean F1 ordering
``teacher >= student(KD) > student(no KD)``, with KD recovering most of the
teacher-student gap.
"""

import numpy as np

from repro.utils import log


def bench_table6_knowledge_distillation(benchmark, suite, profile):
    def collect():
        rows, means = [], {"teacher": [], "student_no_kd": [], "student": []}
        for app, art in suite.items():
            rows.append(
                [
                    app,
                    f"{art.f1['teacher']:.3f}",
                    f"{art.f1['student_no_kd']:.3f}",
                    f"{art.f1['student']:.3f}",
                ]
            )
            for k in means:
                means[k].append(art.f1[k])
        rows.append(
            [
                "Mean",
                f"{np.mean(means['teacher']):.3f}",
                f"{np.mean(means['student_no_kd']):.3f}",
                f"{np.mean(means['student']):.3f}",
            ]
        )
        return rows, {k: float(np.mean(v)) for k, v in means.items()}

    (rows, means) = benchmark.pedantic(collect, rounds=1, iterations=1)
    log.table(
        "Table VI: F1 — teacher / student w/o KD / student w/ KD "
        "(paper means: 0.788 / 0.751 / 0.783)",
        ["app", "teacher", "stu w/o KD", "student"],
        rows,
    )
    # Paper's finding: KD recovers most of the teacher-student gap. The
    # tolerances absorb reduced-scale noise (at REPRO_SCALE=ci the teacher is
    # student-sized, so KD can only match, not improve).
    assert means["student"] >= means["student_no_kd"] - 0.05
    assert means["teacher"] >= means["student"] - 0.10
