"""Pipelined sharded data plane vs. the one-outstanding lockstep.

Not a paper figure — the pipelining check for the sharded runtime: the same
fleet (W workers, shared tables) serving the same streams at credit-window
depths {1, 2, 8}. Three bars:

* **bit-identity** — emissions at *every* depth must equal the
  single-process ``MultiStreamEngine`` oracle (pipelining must never change
  answers);
* **lockstep degeneracy** — depth 1 must behave exactly like the historical
  one-outstanding protocol: zero credit stalls, every send leaving exactly
  one request in flight, and the same worker predict schedule as the deep
  window (framing differs, ingest order doesn't);
* **throughput** — depth 8 over depth 1 at W >= 2 must gain >= 1.3x *when
  the host actually has cores to overlap onto* (>= 2 visible CPUs). On a
  1-CPU host the ratio is still measured and recorded, but the gate is
  marked skipped — overlapping compute onto one time-shared core cannot
  win, and pretending otherwise would poison the committed trajectory.

Run standalone (writes the ``BENCH_pipeline.json`` trajectory artifact)::

    PYTHONPATH=src python benchmarks/bench_pipeline.py --accesses 10000

``--smoke`` (CI) shrinks to 4 streams x ~1.2k accesses. Future PRs compare
their numbers against the committed history of this artifact; keep the
workload/seed stable.
"""

from __future__ import annotations

import argparse
import json
import os

from repro.runtime import serve_interleaved
from repro.utils import log

from bench_sharded import build_dart, make_streams

DEPTHS = [1, 2, 8]
THROUGHPUT_BAR = 1.3
MIN_CPUS_FOR_GATE = 2


def run(
    accesses: int,
    n_streams: int,
    workers: int,
    batch_size: int,
    max_wait: int,
    output: str | None,
    seed: int = 2,
    ipc: str = "pipe",
    identity_accesses: int | None = None,
) -> dict:
    traces = make_streams(n_streams, accesses, seed)
    dart = build_dart(traces[0])
    cpus = os.cpu_count() or 1

    # The oracle every depth must reproduce, on a shorter prefix so the
    # throughput sweep dominates the wall clock.
    id_len = min(accesses, identity_accesses or 3000)
    id_traces = [t.slice(0, id_len) for t in traces]
    ref = dart.multistream(batch_size=batch_size, max_wait=max_wait)
    _, _, ref_lists = serve_interleaved(
        ref.streams(n_streams), id_traces, collect=True
    )

    record: dict = {
        "workload": "462.libquantum",
        "seed": seed,
        "streams": n_streams,
        "accesses_per_stream": accesses,
        "batch_size": batch_size,
        "max_wait": max_wait,
        "workers": workers,
        "ipc": ipc,
        "cpus": cpus,
        "by_depth": {},
    }
    rows = []
    for depth in DEPTHS:
        with dart.sharded(
            workers=workers, batch_size=batch_size, max_wait=max_wait,
            ipc=ipc, pipeline_depth=depth,
        ) as eng:
            agg, _, _ = eng.serve(traces, collect=False)
            stats = eng.stats()
        with dart.sharded(
            workers=workers, batch_size=batch_size, max_wait=max_wait,
            ipc=ipc, pipeline_depth=depth,
        ) as eng:
            _, _, lists = eng.serve(id_traces, collect=True)
        identical = all(lists[i] == ref_lists[i] for i in range(n_streams))
        meter = stats["pipeline"]
        record["by_depth"][str(depth)] = {
            **agg.to_dict(),
            "identical_to_single_process": identical,
            "predict_calls": stats["predict_calls"],
            "pipeline": meter,
        }
        rows.append(
            [str(depth), f"{agg.throughput:,.0f}", f"{agg.p50_us:.1f}",
             f"{agg.p99_us:.1f}", str(meter["credit_stalls"]),
             f"{meter['overlap_ratio']:.2f}", str(identical)]
        )
    log.table(
        f"pipelined serving of {n_streams} streams over W={workers} "
        f"({accesses:,} accesses each, B={batch_size}, ipc={ipc}, "
        f"{cpus} CPU(s) visible)",
        ["depth", "acc/s", "p50 us", "p99 us", "stalls", "overlap", "identical"],
        rows,
    )

    record["all_identical"] = all(
        v["identical_to_single_process"] for v in record["by_depth"].values()
    )
    # Depth 1 must be the historical lockstep exactly: no stalls, a pure
    # one-outstanding occupancy profile, and the same predict schedule as
    # the deepest window.
    m1 = record["by_depth"]["1"]["pipeline"]
    record["depth1_lockstep_exact"] = (
        m1["credit_stalls"] == 0
        and m1["inflight_hist"] == [0, m1["sends"]]
        and record["by_depth"]["1"]["predict_calls"]
        == record["by_depth"][str(max(DEPTHS))]["predict_calls"]
    )
    thr = {d: v["throughput"] for d, v in record["by_depth"].items()}
    d_hi = str(max(DEPTHS))
    ratio = thr[d_hi] / thr["1"] if thr["1"] else 0.0
    record["throughput_depth%s_over_depth1" % d_hi] = ratio
    record["throughput_bar"] = THROUGHPUT_BAR
    gate_applies = cpus >= MIN_CPUS_FOR_GATE and workers >= 2
    record["throughput_gate"] = (
        "enforced" if gate_applies
        else f"skipped ({cpus} CPU(s) visible; overlap needs cores)"
    )
    throughput_ok = (ratio >= THROUGHPUT_BAR) if gate_applies else True
    ok = (
        record["all_identical"]
        and record["depth1_lockstep_exact"]
        and throughput_ok
    )
    record["pass"] = ok
    verdict = "PASS" if ok else "FAIL"
    print(
        f"[{verdict}] depth 1->{d_hi}: {ratio:.2f}x throughput "
        f"(bar {THROUGHPUT_BAR}x, gate {record['throughput_gate']}), "
        f"bit-identical={record['all_identical']}, "
        f"depth-1 lockstep exact={record['depth1_lockstep_exact']}"
    )
    if output:
        with open(output, "w", encoding="utf-8") as f:
            json.dump(record, f, indent=2, sort_keys=True)
        print(f"wrote {output}")
    return record


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--accesses", type=int, default=10_000, help="per stream")
    ap.add_argument("--streams", type=int, default=8)
    ap.add_argument("--workers", type=int, default=2)
    ap.add_argument("--batch-size", type=int, default=64)
    ap.add_argument("--max-wait", type=int, default=16)
    ap.add_argument("--ipc", choices=["pipe", "ring"], default="pipe")
    ap.add_argument("--seed", type=int, default=2)
    ap.add_argument("--output", "-o", default="BENCH_pipeline.json")
    ap.add_argument("--smoke", action="store_true",
                    help="tiny CI run: 4 streams, ~1.2k accesses")
    args = ap.parse_args(argv)
    if args.smoke:
        args.accesses = 1200
        args.streams = 4
        args.batch_size = 16
        args.max_wait = 4
    record = run(
        args.accesses, args.streams, args.workers, args.batch_size,
        args.max_wait, args.output, seed=args.seed, ipc=args.ipc,
    )
    return 0 if record["pass"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
