#!/usr/bin/env python3
"""Tabularize an arbitrary attention model with the raw kernels (paper Sec. V).

The converter in ``repro.tabularization`` handles the paper's predictor
architecture end-to-end, but the kernels are general: this example builds a
small custom attention network for a *different* task (sequence regression),
converts its pieces by hand with :class:`TabularLinear` and
:class:`TabularAttention`, and measures the per-layer approximation error —
the workflow for tabularizing "an arbitrary attention-based NN" (Sec. V).

Usage::

    python examples/custom_model_tabularization.py
"""

import numpy as np

from repro.nn import Linear, MultiHeadSelfAttention
from repro.tabularization import TabularAttention, TabularLinear


def main() -> None:
    rng = np.random.default_rng(0)
    n, t, d_in, d = 2000, 12, 6, 16

    # A custom two-stage model: Linear embed -> sigmoid-score MSA -> Linear out.
    embed = Linear(d_in, d, rng=1)
    attn = MultiHeadSelfAttention(d, heads=2, score_mode="sigmoid", rng=2)
    head = Linear(d, 1, rng=3)

    # Synthetic "sensor" sequences with cluster structure (tabularization
    # thrives on clusterable activations).
    centers = rng.standard_normal((10, d_in))
    x = centers[rng.integers(0, 10, size=n * t)].reshape(n, t, d_in)
    x += 0.1 * rng.standard_normal(x.shape)

    # Exact forward pass, capturing intermediates as conversion targets.
    h = embed.forward(x)
    y_attn = attn.forward(h)
    y = head.forward(y_attn.mean(axis=1))

    print("=== converting each stage to tables ===")
    # Stage 1: linear kernel for the embedding.
    tab_embed = TabularLinear.train(embed, x, n_prototypes=64, n_subspaces=2, rng=4)
    h_hat = tab_embed.query(x)
    err1 = np.abs(h_hat - h).mean() / np.abs(h).mean()
    print(f"embed   : rel err {err1:.3f}, latency {tab_embed.latency_cycles():.0f} cyc")

    # Stage 2: attention kernel per head (batched across heads).
    q, k, v = attn.project_qkv(h_hat)  # (B, H, T, Dh) from approximated inputs
    bh = q.shape[0] * q.shape[1]
    qp, kp, vp = (m.reshape(bh, t, d // 2) for m in (q, k, v))
    kern = TabularAttention.train(qp, kp, vp, n_prototypes=64, n_subspaces_k=2, rng=5)
    ctx = kern.query(qp, kp, vp).reshape(n, 2, t, d // 2).transpose(0, 2, 1, 3).reshape(n, t, d)
    out_attn = tab_embed_out = ctx @ attn.out.weight.value.T + attn.out.bias.value
    err2 = np.abs(out_attn - y_attn).mean() / np.abs(y_attn).mean()
    print(f"attention: rel err {err2:.3f}, latency {kern.latency_cycles():.0f} cyc")

    # Stage 3: linear kernel for the head on pooled (approximated) context.
    pooled_hat = out_attn.mean(axis=1)
    tab_head = TabularLinear.train(head, pooled_hat, n_prototypes=64, n_subspaces=2, rng=6)
    y_hat = tab_head.query(pooled_hat)
    err3 = np.abs(y_hat - y).mean() / np.abs(y).mean()
    print(f"head    : rel err {err3:.3f}, latency {tab_head.latency_cycles():.0f} cyc")

    total_latency = tab_embed.latency_cycles() + kern.latency_cycles() + tab_head.latency_cycles()
    total_storage = (
        tab_embed.storage_bits(t) + kern.storage_bits(t) + tab_head.storage_bits(1)
    ) / 8 / 1024
    print("\n=== converted model ===")
    print(f"end-to-end output correlation: "
          f"{np.corrcoef(y_hat.ravel(), y.ravel())[0, 1]:.3f}")
    print(f"total kernel latency: {total_latency:.0f} cycles "
          f"(vs thousands for the dense matmuls on a systolic array)")
    print(f"total table storage : {total_storage:.1f} KB")


if __name__ == "__main__":
    main()
