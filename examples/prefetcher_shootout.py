#!/usr/bin/env python3
"""Prefetcher shootout: rule-based vs learned, with latency honesty.

Simulates BO, ISB, stride, next-line, an idealized NN prefetcher, the same
NN with its real latency, and DART on one workload — a compact version of the
paper's Figs. 12-14 showing *why* latency is the story.

Usage::

    python examples/prefetcher_shootout.py [workload]    # default: 410.bwaves
"""

import sys

from repro.data import PreprocessConfig, build_dataset, train_test_split
from repro.distillation import TrainConfig, train_model
from repro.models import AttentionPredictor, ModelConfig
from repro.prefetch import (
    BestOffsetPrefetcher,
    DARTPrefetcher,
    ISBPrefetcher,
    NeuralPrefetcher,
    NextLinePrefetcher,
    StridePrefetcher,
)
from repro.sim import SimConfig, ipc_improvement, simulate
from repro.tabularization import TableConfig, tabularize_predictor
from repro.traces import WORKLOAD_NAMES, make_workload
from repro.utils import log


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "410.bwaves"
    if workload not in WORKLOAD_NAMES:
        raise SystemExit(f"unknown workload {workload!r}; choose from {WORKLOAD_NAMES}")
    pp = PreprocessConfig(history_len=16, window=10, delta_range=128)

    print(f"=== training a predictor on {workload} ===")
    train_trace = make_workload(workload, scale=0.05, seed=1)
    ds = build_dataset(train_trace.pcs, train_trace.addrs, pp, max_samples=2500)
    ds_train, ds_val = train_test_split(ds, 0.8)
    model = AttentionPredictor(
        ModelConfig(layers=1, dim=32, heads=2, history_len=16, bitmap_size=256),
        ds.x_addr.shape[2], ds.x_pc.shape[2], rng=0,
    )
    train_model(model, ds_train, ds_val, TrainConfig(epochs=4, batch_size=128, lr=2e-3, seed=0))

    print("=== tabularizing it into DART ===")
    tab, _ = tabularize_predictor(
        model, ds_train.x_addr, ds_train.x_pc, TableConfig.uniform(128, 2), rng=1
    )
    dart = DARTPrefetcher(tab, pp, max_degree=2)

    prefetchers = [
        NextLinePrefetcher(degree=2),
        StridePrefetcher(degree=2),
        BestOffsetPrefetcher(),
        ISBPrefetcher(),
        NeuralPrefetcher(model, pp, "NN (ideal, 0 cyc)", latency_cycles=0),
        NeuralPrefetcher(model, pp, "NN (real, 4500 cyc)", latency_cycles=4500),
        dart,
    ]

    print("=== simulating on a fresh run of the program ===")
    sim_trace = make_workload(workload, scale=0.15, seed=2)
    cfg = SimConfig()
    base = simulate(sim_trace, None, cfg)
    rows = []
    for pf in prefetchers:
        r = simulate(sim_trace, pf, cfg)
        rows.append(
            [
                pf.name,
                f"{pf.latency_cycles}",
                f"{ipc_improvement(r, base):+.1%}",
                f"{r.accuracy:.2%}",
                f"{r.coverage(base.demand_misses):.2%}",
                f"{r.late_prefetch_hits:,}",
            ]
        )
    log.table(
        f"Prefetcher shootout on {workload} (baseline IPC {base.ipc:.3f}, "
        f"hit rate {base.hit_rate:.1%})",
        ["prefetcher", "latency", "IPC gain", "accuracy", "coverage", "late hits"],
        rows,
    )
    print(f"\nDART: latency {dart.latency_cycles} cycles, "
          f"storage {dart.storage_bytes / 1024:.1f} KB — table-based speed, NN accuracy.")

    # Why the table looks the way it does: distance-to-use classification.
    from repro.prefetch import compare_timeliness

    cycles_per_access = base.cycles / max(base.demand_accesses, 1)
    reports = compare_timeliness(
        sim_trace, prefetchers, cycles_per_access=cycles_per_access
    )
    log.table(
        f"Timeliness anatomy (calibrated at {cycles_per_access:.1f} cycles/access)",
        ["prefetcher", "timely", "late", "useless", "redundant", "median dist"],
        [
            [r.name, f"{r.timely:,}", f"{r.late:,}", f"{r.useless:,}",
             f"{r.redundant:,}", f"{r.summary()['median_distance']:.0f}"]
            for r in reports
        ],
    )


if __name__ == "__main__":
    main()
