#!/usr/bin/env python3
"""Train the faithful hierarchical Voyager and deploy it as a prefetcher.

The paper treats Voyager as a black-box baseline (Table IX: LSTM, 14.9 MB,
27.7K cycles). This example exercises our faithful implementation of the
actual architecture — page/offset/PC vocabularies, embeddings, LSTM trunk,
dual cross-entropy heads — end to end:

1. build vocabularies and the windowed dataset from a training run,
2. train with Adam + gradient clipping,
3. report page / offset / full-address top-1 accuracy out-of-sample,
4. simulate it as an LLC prefetcher at its practical (27.7K-cycle) and
   idealized (0-cycle) latencies — reproducing the paper's core observation
   that the same predictor collapses once inference latency is charged.

Usage::

    python examples/voyager_faithful.py [workload]   # default: 410.bwaves
"""

import sys

from repro.models import (
    VoyagerPredictor,
    VoyagerPrefetcher,
    VoyagerTrainConfig,
    build_voyager_dataset,
    next_address_accuracy,
    train_voyager,
)
from repro.sim import SimConfig, ipc_improvement, simulate
from repro.traces import WORKLOAD_NAMES, make_workload

HISTORY = 8


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "410.bwaves"
    if workload not in WORKLOAD_NAMES:
        raise SystemExit(f"unknown workload {workload!r}; choose from {WORKLOAD_NAMES}")

    print(f"=== faithful Voyager on {workload} ===\n")
    train_trace = make_workload(workload, scale=0.05, seed=1)
    ds, page_vocab, pc_vocab = build_voyager_dataset(
        train_trace, history_len=HISTORY, max_samples=6000
    )
    print(f"training: {len(ds):,} windows, {len(page_vocab):,} pages, "
          f"{len(pc_vocab):,} PCs in vocabulary")

    model = VoyagerPredictor(len(page_vocab), len(pc_vocab), emb_dim=32, hidden_dim=64, rng=0)
    losses = train_voyager(model, ds, VoyagerTrainConfig(epochs=4, batch_size=64, lr=2e-3))
    print(f"loss: {losses[0]:.3f} -> {losses[-1]:.3f} over {len(losses)} epochs")

    # Out-of-sample: a different run (seed) of the same program.
    eval_trace = make_workload(workload, scale=0.05, seed=2)
    ds_eval, _, _ = build_voyager_dataset(
        eval_trace, history_len=HISTORY, page_vocab=page_vocab, pc_vocab=pc_vocab,
        max_samples=4000,
    )
    acc = next_address_accuracy(model, ds_eval)
    print("\n--- next-access prediction accuracy (out-of-sample) ---")
    print(f"  page    : {acc['page_acc']:.2%}")
    print(f"  offset  : {acc['offset_acc']:.2%}")
    print(f"  address : {acc['address_acc']:.2%}  (both must be right)")

    print("\n--- prefetching: latency is the whole story ---")
    sim_trace = make_workload(workload, scale=0.1, seed=3)
    base = simulate(sim_trace, None, SimConfig())
    print(f"  baseline IPC: {base.ipc:.3f}")
    for name, latency in (("Voyager-I (ideal)", 0), ("Voyager (27.7K cycles)", 27_700)):
        pf = VoyagerPrefetcher(
            model, page_vocab, pc_vocab, history_len=HISTORY, degree=2,
            name=name, latency_cycles=latency,
        )
        r = simulate(sim_trace, pf, SimConfig())
        print(f"  {name:24s} IPC {r.ipc:.3f} ({ipc_improvement(r, base):+6.1%})  "
              f"accuracy {r.accuracy:6.2%}  late hits {r.late_prefetch_hits}")


if __name__ == "__main__":
    main()
