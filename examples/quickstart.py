#!/usr/bin/env python3
"""Quickstart: the full DART workflow (paper Fig. 2) on one workload.

Runs in ~2 minutes on a laptop: generates a synthetic SPEC-like trace, trains
a (reduced) teacher, configures tables for a latency/storage budget, distills
a student, tabularizes it with fine-tuning, and reports prediction F1 plus
prefetching IPC against a no-prefetch baseline.

Usage::

    python examples/quickstart.py [workload]     # default: 462.libquantum
"""

import sys

from repro.core import DARTPipeline
from repro.data import PreprocessConfig
from repro.distillation import TrainConfig
from repro.models import ModelConfig
from repro.sim import SimConfig, ipc_improvement, simulate
from repro.traces import WORKLOAD_NAMES, make_workload
from repro.utils import log


def main() -> None:
    log.set_verbose(True)
    workload = sys.argv[1] if len(sys.argv) > 1 else "462.libquantum"
    if workload not in WORKLOAD_NAMES:
        raise SystemExit(f"unknown workload {workload!r}; choose from {WORKLOAD_NAMES}")

    print(f"=== DART quickstart on {workload} ===")
    trace = make_workload(workload, scale=0.05, seed=1)
    print(f"trace: {len(trace):,} LLC accesses, {trace.num_instructions:,} instructions")

    pipeline = DARTPipeline(
        preprocess=PreprocessConfig(history_len=16, window=10, delta_range=128),
        # Reduced teacher so the example is fast; use (4, 256, 8) for paper scale.
        teacher_config=ModelConfig(layers=2, dim=64, heads=4, history_len=16, bitmap_size=256),
        latency_budget=100.0,  # tau  (cycles)  — the paper's DART budget
        storage_budget=1_000_000.0,  # s (bytes)
        teacher_train=TrainConfig(epochs=3, batch_size=128, lr=1e-3, seed=0),
        student_train=TrainConfig(epochs=4, batch_size=128, lr=2e-3, seed=1),
        max_samples=3000,
        seed=0,
    )
    result = pipeline.run(trace)

    print("\n--- prediction quality (validation F1) ---")
    for name, f1 in result.f1.items():
        print(f"  {name:10s} {f1:.3f}")
    print("\n--- DART predictor costs (analytic, paper Eqs. 16-23) ---")
    print(f"  configuration : {result.candidate.summary()}")
    print(f"  latency       : {result.dart.latency_cycles} cycles (budget 100)")
    print(f"  storage       : {result.dart.storage_bytes / 1024:.1f} KB (budget 976.6 KB)")

    print("\n--- prefetching simulation (fresh run of the same program) ---")
    sim_trace = make_workload(workload, scale=0.1, seed=2)
    base = simulate(sim_trace, None, SimConfig())
    run = simulate(sim_trace, result.dart, SimConfig())
    print(f"  baseline IPC      : {base.ipc:.3f} (hit rate {base.hit_rate:.2%})")
    print(f"  DART IPC          : {run.ipc:.3f}")
    print(f"  IPC improvement   : {ipc_improvement(run, base):+.1%}")
    print(f"  prefetch accuracy : {run.accuracy:.2%}  "
          f"coverage: {run.coverage(base.demand_misses):.2%}")


if __name__ == "__main__":
    main()
