#!/usr/bin/env python3
"""Design-space exploration with the table configurator (paper Sec. VI-C).

Shows how the latency-major greedy configurator answers "what is the best
tabular predictor I can fit in (tau cycles, s bytes)?" across a sweep of
budgets — the workflow a prefetcher architect would use — and prints the
latency/storage frontier.

Usage::

    python examples/constrained_prefetcher_design.py
"""

from repro.prefetch import TableConfigurator
from repro.utils import log


def main() -> None:
    configurator = TableConfigurator(history_len=16, bitmap_size=256)
    print(f"design space: {len(configurator.candidates)} candidate configurations\n")

    # The paper's Table VIII budget points plus a sweep around them.
    budgets = [
        (60, 30_000),
        (100, 1_000_000),
        (150, 2_000_000),
        (200, 4_000_000),
        (300, 16_000_000),
    ]
    rows = []
    for tau, s in budgets:
        try:
            c = configurator.configure(tau, s)
            rows.append(
                [
                    f"tau={tau}, s={s / 1000:.0f}K",
                    f"(L={c.model.layers}, D={c.model.dim}, H={c.model.heads}, "
                    f"K={c.table.k_input}, C={c.table.c_input})",
                    f"{c.latency_cycles:.0f}",
                    f"{c.storage_bytes / 1024:.1f} KB",
                    f"{c.ops:.0f}",
                ]
            )
        except ValueError as e:
            rows.append([f"tau={tau}, s={s / 1000:.0f}K", f"infeasible: {e}", "-", "-", "-"])
    log.table(
        "Configurator choices across budgets (latency-major greedy)",
        ["budget", "configuration", "latency (cyc)", "storage", "kernel ops"],
        rows,
    )

    # The Pareto frontier of the whole space: for each latency tier, the
    # storage range available.
    tiers: dict[float, list[float]] = {}
    for c in configurator.candidates:
        tiers.setdefault(c.latency_cycles, []).append(c.storage_bytes)
    frontier = [
        [f"{lat:.0f}", len(sizes), f"{min(sizes) / 1024:.1f} KB", f"{max(sizes) / 1024:.1f} KB"]
        for lat, sizes in sorted(tiers.items())
    ]
    log.table(
        "Latency tiers in the design space",
        ["latency (cyc)", "# configs", "min storage", "max storage"],
        frontier[:12],
    )


if __name__ == "__main__":
    main()
