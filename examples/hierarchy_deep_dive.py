#!/usr/bin/env python3
"""Whole-hierarchy study: where do a workload's cycles actually go?

The paper evaluates prefetchers at the LLC with a flat DRAM latency; this
example runs the *detailed* substrate — L1D/L2/LLC with replacement policies,
first-touch virtual→physical paging, and the banked open-page DRAM model — to
answer questions the flat model cannot:

1. how much each cache level filters (hit-rate ladder),
2. whether misses are capacity or replacement misses (Belady headroom),
3. how much DRAM row locality the OS page allocator destroys,
4. what an LLC prefetcher is worth once all of that is modeled.

Usage::

    python examples/hierarchy_deep_dive.py [workload]   # default: 602.gcc
"""

import sys

from repro.prefetch import BestOffsetPrefetcher, SPPPrefetcher, StreamPrefetcher
from repro.sim import (
    HierarchyConfig,
    ipc_improvement,
    opt_miss_rate,
    replacement_headroom,
    simulate,
    simulate_hierarchy,
)
from repro.traces import WORKLOAD_NAMES, make_workload


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "602.gcc"
    if workload not in WORKLOAD_NAMES:
        raise SystemExit(f"unknown workload {workload!r}; choose from {WORKLOAD_NAMES}")

    trace = make_workload(workload, scale=0.2, seed=2)
    print(f"=== hierarchy deep-dive: {workload} ({len(trace):,} accesses) ===\n")

    # 1. The hit-rate ladder and DRAM behaviour, paging on vs. off.
    for paging in (True, False):
        cfg = HierarchyConfig(paging=paging)
        r = simulate_hierarchy(trace, None, cfg)
        tag = "paged (ChampSim-like)" if paging else "contiguous frames"
        print(f"--- {tag} ---")
        print(f"  L1D {r.l1d.hit_rate:7.2%}   L2 {r.l2.hit_rate:7.2%}   "
              f"LLC {r.llc.hit_rate:7.2%}")
        print(f"  DRAM row-hit rate : {r.dram['row_hit_rate']:.2%} "
              f"({r.dram['row_conflicts']} conflicts)")
        print(f"  IPC               : {r.sim.ipc:.3f}\n")

    # 2. Replacement headroom: would a better policy than LRU help at all?
    flat = simulate(trace, None)
    head = replacement_headroom(trace, flat.demand_misses, 8 * 1024 * 1024, 16)
    print("--- Belady (OPT) analysis at the LLC ---")
    print(f"  LRU misses        : {head['lru_misses']:,}")
    print(f"  OPT misses        : {head['opt_misses']:,}")
    print(f"  OPT miss rate     : {opt_miss_rate(trace, 8 * 1024 * 1024):.2%}")
    print(f"  replacement slack : {head['headroom']:.2%} "
          f"(what a perfect policy could remove; the rest needs prefetching)\n")

    # 3. Replacement-policy ablation at the LLC.
    print("--- LLC replacement policy (full hierarchy) ---")
    from dataclasses import replace

    base_cfg = HierarchyConfig()
    for policy in ("lru", "srrip", "drrip", "plru", "random"):
        cfg = replace(base_cfg, llc=replace(base_cfg.llc, policy=policy))
        r = simulate_hierarchy(trace, None, cfg)
        print(f"  {policy:7s} LLC hit {r.llc.hit_rate:7.2%}   IPC {r.sim.ipc:.3f}")
    print()

    # 4. What prefetching is worth in the detailed model.
    print("--- LLC prefetchers in the detailed model ---")
    cfg = HierarchyConfig()
    base = simulate_hierarchy(trace, None, cfg)
    for pf in (StreamPrefetcher(), BestOffsetPrefetcher(), SPPPrefetcher()):
        r = simulate_hierarchy(trace, pf, cfg)
        print(f"  {pf.name:9s} IPC {r.sim.ipc:.3f} ({ipc_improvement(r.sim, base.sim):+6.1%})  "
              f"accuracy {r.sim.accuracy:6.2%}  LLC hit {r.llc.hit_rate:.2%}")


if __name__ == "__main__":
    main()
