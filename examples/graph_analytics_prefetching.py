#!/usr/bin/env python3
"""Graph analytics: phase structure and prefetching on BFS / PageRank / CC.

Graph workloads are the motivating hard case for learned prefetchers (the
authors' companion work targets them directly): a CSR traversal interleaves
two sequential streams (row offsets, edge array) with a data-dependent
gather stream that defeats spatial heuristics. This example:

1. synthesizes BFS, PageRank and label-propagation traces from a seeded
   power-law graph,
2. runs the phase detector to show the stream/gather decomposition is
   visible in windowed features,
3. compares rule-based prefetchers on each kernel — spatial designs ride
   the sequential streams, temporal/correlation designs claw back some of
   the gathers.

Usage::

    python examples/graph_analytics_prefetching.py
"""

from repro.prefetch import (
    BestOffsetPrefetcher,
    GHBPrefetcher,
    ISBPrefetcher,
    MarkovPrefetcher,
    StreamPrefetcher,
)
from repro.sim import SimConfig, ipc_improvement, simulate
from repro.traces import (
    GRAPH_WORKLOADS,
    detect_phases,
    make_graph_workload,
    phase_summary,
)


def main() -> None:
    # A graph this size fits an 8 MB LLC, which would make every *temporal*
    # prefetch a duplicate of a resident line; size the LLC below the graph
    # footprint (the realistic regime: real graphs dwarf any LLC).
    cfg = SimConfig(llc_capacity_bytes=128 * 1024, llc_ways=16)
    for kind in GRAPH_WORKLOADS:
        trace = make_graph_workload(kind, n_vertices=3000, avg_degree=8, seed=1)
        print(f"=== graph.{kind}: {len(trace):,} LLC accesses ===")

        labels = detect_phases(trace, n_phases=2, window=512, seed=0)
        for s in phase_summary(trace, labels, window=512):
            print(
                f"  phase {s['phase']}: {s['fraction']:5.1%} of windows  "
                f"stream_frac={s['stream_frac']:.2f}  "
                f"delta_entropy={s['delta_entropy']:.2f}"
            )

        base = simulate(trace, None, cfg)
        print(f"  baseline IPC {base.ipc:.3f} (hit rate {base.hit_rate:.2%})")
        for pf in (
            StreamPrefetcher(),
            BestOffsetPrefetcher(),
            GHBPrefetcher("pc"),
            ISBPrefetcher(),
            MarkovPrefetcher(),
        ):
            r = simulate(trace, pf, cfg)
            print(
                f"  {pf.name:10s} ΔIPC {ipc_improvement(r, base):+6.1%}  "
                f"accuracy {r.accuracy:6.2%}  coverage {r.coverage(base.demand_misses):6.2%}"
            )
        print()


if __name__ == "__main__":
    main()
