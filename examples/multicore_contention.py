#!/usr/bin/env python3
"""Multi-programmed prefetching: does one core's prefetcher hurt its neighbours?

Table III simulates a 4-core system. A prefetcher that looks great alone can
be a bad citizen under sharing: its speculative fills evict other cores'
working sets and occupy shared DRAM bus slots. This example runs a 4-core
mix three ways —

1. each workload alone (private baseline),
2. the mix with no prefetching,
3. the mix with a prefetcher on every core,

and reports per-core IPC plus *weighted speedup* (sum of shared/alone IPC
ratios; 4.0 = no interference on 4 cores).

Usage::

    python examples/multicore_contention.py
"""

from repro.prefetch import BestOffsetPrefetcher, StreamPrefetcher
from repro.sim import HierarchyConfig
from repro.sim.multicore import simulate_multicore
from repro.traces import make_workload

MIX = ["462.libquantum", "602.gcc", "619.lbm", "410.bwaves"]


def main() -> None:
    cfg = HierarchyConfig()
    traces = [make_workload(w, scale=0.1, seed=2) for w in MIX]
    print(f"=== 4-core mix: {', '.join(MIX)} ===\n")

    # 1. Runs-alone baselines (one core each).
    alone = [simulate_multicore([t], config=cfg).cores[0] for t in traces]
    print("--- runs alone ---")
    for r in alone:
        print(f"  {r.name:22s} IPC {r.ipc:.3f}")

    # 2. Shared, no prefetching.
    shared = simulate_multicore(traces, config=cfg)
    print("\n--- shared LLC + DRAM, no prefetching ---")
    for r, a in zip(shared.cores, alone):
        print(f"  {r.name:22s} IPC {r.ipc:.3f} ({r.ipc / a.ipc:6.1%} of alone)")
    ws = shared.weighted_speedup(alone)
    print(f"  weighted speedup: {ws:.2f} / {len(MIX)}.00")
    print(f"  DRAM row-hit rate: {shared.dram['row_hit_rate']:.2%}")

    # 3. Shared with a prefetcher per core.
    for make_pf in (StreamPrefetcher, BestOffsetPrefetcher):
        pfs = [make_pf() for _ in traces]
        with_pf = simulate_multicore(traces, prefetchers=pfs, config=cfg)
        print(f"\n--- shared, {pfs[0].name} on every core ---")
        for r, a in zip(with_pf.cores, alone):
            print(
                f"  {r.name:22s} IPC {r.ipc:.3f} "
                f"(accuracy {r.accuracy:6.2%}, issued {r.prefetches_issued})"
            )
        print(f"  weighted speedup: {with_pf.weighted_speedup(alone):.2f} "
              f"(vs {ws:.2f} without prefetching)")
        print(f"  aggregate IPC   : {with_pf.aggregate_ipc:.3f} "
              f"(vs {shared.aggregate_ipc:.3f})")


if __name__ == "__main__":
    main()
