"""Seeded RNG helpers and npz persistence."""

import numpy as np

from repro.utils.rng import new_rng, spawn_rngs
from repro.utils.serialization import load_arrays, save_arrays


def test_new_rng_deterministic():
    a = new_rng(7).standard_normal(5)
    b = new_rng(7).standard_normal(5)
    assert np.array_equal(a, b)


def test_new_rng_passthrough():
    g = np.random.default_rng(3)
    assert new_rng(g) is g


def test_new_rng_none_is_fixed():
    assert np.array_equal(new_rng(None).standard_normal(3), new_rng(0).standard_normal(3))


def test_spawn_rngs_independent_and_stable():
    c1 = spawn_rngs(42, 3)
    c2 = spawn_rngs(42, 3)
    for a, b in zip(c1, c2):
        assert np.array_equal(a.standard_normal(4), b.standard_normal(4))
    # children differ from each other
    vals = [g.standard_normal(4) for g in spawn_rngs(42, 3)]
    assert not np.array_equal(vals[0], vals[1])


def test_save_load_roundtrip(tmp_path):
    data = {
        "a": np.arange(10, dtype=np.int64),
        "nested/b": np.eye(3),
    }
    path = tmp_path / "state"
    save_arrays(path, data)
    loaded = load_arrays(path)
    assert set(loaded) == set(data)
    for k in data:
        assert np.array_equal(loaded[k], data[k])


def test_save_appends_npz_suffix(tmp_path):
    path = tmp_path / "x"
    save_arrays(path, {"v": np.zeros(2)})
    assert (tmp_path / "x.npz").exists()
