"""Delta-bitmap labels and decode (Sec. VI-A)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.data import (
    bitmap_index_to_delta,
    bitmap_to_deltas,
    delta_to_bitmap_index,
    make_delta_bitmap_labels,
)


def test_index_layout():
    r = 4
    # d=-4..-1 -> 0..3 ; d=+1..+4 -> 4..7
    assert delta_to_bitmap_index(-4, r) == 0
    assert delta_to_bitmap_index(-1, r) == 3
    assert delta_to_bitmap_index(1, r) == 4
    assert delta_to_bitmap_index(4, r) == 7
    assert delta_to_bitmap_index(0, r) == -1
    assert delta_to_bitmap_index(5, r) == -1
    assert delta_to_bitmap_index(-5, r) == -1


@given(d=st.integers(min_value=-64, max_value=64), r=st.sampled_from([8, 32, 64]))
def test_index_roundtrip(d, r):
    idx = delta_to_bitmap_index(d, r)
    if d != 0 and -r <= d <= r:
        assert 0 <= idx < 2 * r
        assert bitmap_index_to_delta(idx, r) == d
    else:
        assert idx == -1


def test_labels_simple_stream():
    ba = np.arange(20, dtype=np.int64)  # pure +1 stream
    labels = make_delta_bitmap_labels(ba, window=3, delta_range=4)
    assert labels.shape == (17, 8)
    # every anchor sees deltas {+1, +2, +3}
    expected = np.zeros(8)
    expected[[4, 5, 6]] = 1.0
    assert np.allclose(labels, expected[None, :])


def test_labels_out_of_range_ignored():
    ba = np.array([0, 1000, 2000, 3000], dtype=np.int64)
    labels = make_delta_bitmap_labels(ba, window=2, delta_range=8)
    assert labels.sum() == 0.0


def test_labels_mixed_window():
    ba = np.array([10, 11, 9, 10, 10], dtype=np.int64)
    labels = make_delta_bitmap_labels(ba, window=2, delta_range=4)
    # anchor 0 (ba=10): future deltas {+1, -1}
    assert labels[0, delta_to_bitmap_index(1, 4)] == 1
    assert labels[0, delta_to_bitmap_index(-1, 4)] == 1
    # anchor 2 (ba=9): future {1, 1} -> only +1 bit
    assert labels[2].sum() == 1


def test_labels_short_trace():
    assert make_delta_bitmap_labels(np.arange(3), window=5, delta_range=4).shape == (0, 8)
    with pytest.raises(ValueError):
        make_delta_bitmap_labels(np.arange(10), window=0, delta_range=4)


def test_bitmap_to_deltas_threshold_and_degree():
    probs = np.zeros(16)
    r = 8
    probs[delta_to_bitmap_index(2, r)] = 0.9
    probs[delta_to_bitmap_index(-3, r)] = 0.7
    probs[delta_to_bitmap_index(5, r)] = 0.4  # below threshold
    out = bitmap_to_deltas(probs, threshold=0.5, max_degree=None)[0]
    assert set(out.tolist()) == {2, -3}
    # degree 1 keeps the highest-probability delta
    out1 = bitmap_to_deltas(probs, threshold=0.5, max_degree=1)[0]
    assert out1.tolist() == [2]


def test_bitmap_to_deltas_empty():
    out = bitmap_to_deltas(np.zeros(16), threshold=0.5)[0]
    assert out.size == 0


@given(
    seed=st.integers(min_value=0, max_value=1000),
    window=st.integers(min_value=1, max_value=6),
)
def test_labels_property_bits_match_future(seed, window):
    """Property: bit b set iff some future delta within window maps to b."""
    rng = np.random.default_rng(seed)
    ba = rng.integers(0, 30, size=30).astype(np.int64)
    r = 8
    labels = make_delta_bitmap_labels(ba, window, r)
    for t in range(labels.shape[0]):
        future = ba[t + 1 : t + 1 + window] - ba[t]
        expect = set(
            int(delta_to_bitmap_index(d, r)) for d in future if d != 0 and -r <= d <= r
        )
        got = set(np.flatnonzero(labels[t]).tolist())
        assert got == expect
