"""Algebraic invariants of the tabularization kernels (hypothesis-driven).

The linear kernel's defining identity: because ``table[c,k,:] = W_c · P_c[k]``
with the bias folded into subspace 0, the query of ANY input x must equal the
dense affine map applied to x's *PQ reconstruction*::

    query(x) == reconstruct(encode(x)) @ W.T + b      (exactly, mod float)

This pins the whole encode → gather → aggregate path to the PQ math — if
either side drifts (bias folding, padding, subspace split), the identity
breaks for some random input.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.linear import Linear
from repro.tabularization import TabularAttention, TabularLinear


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 1000),
    d_in=st.integers(3, 12),
    d_out=st.integers(1, 6),
    c=st.integers(1, 3),
    k=st.sampled_from([4, 8, 16]),
)
def test_property_linear_kernel_equals_affine_of_reconstruction(seed, d_in, d_out, c, k):
    if c > d_in:
        c = d_in
    rng = np.random.default_rng(seed)
    layer = Linear(d_in, d_out, rng=seed)
    x_train = rng.standard_normal((200, d_in))
    tab = TabularLinear.train(layer, x_train, n_prototypes=k, n_subspaces=c, rng=seed + 1)
    x = rng.standard_normal((20, d_in))
    recon = tab.pq.reconstruct(tab.pq.encode(x))
    expected = recon @ layer.weight.value.T + layer.bias.value
    np.testing.assert_allclose(tab.query(x), expected, atol=1e-9)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 1000))
def test_property_linear_kernel_exact_on_prototype_inputs(seed):
    """Inputs lying exactly on prototypes reconstruct exactly, so the kernel
    must reproduce the dense layer bit-for-bit on them."""
    rng = np.random.default_rng(seed)
    layer = Linear(8, 4, rng=seed)
    x_train = rng.standard_normal((300, 8))
    tab = TabularLinear.train(layer, x_train, n_prototypes=16, n_subspaces=2, rng=seed)
    # Build inputs from the prototypes themselves.
    protos = tab.pq.prototypes  # (C, K, V)
    picks = rng.integers(0, 16, size=(10, 2))
    x = np.concatenate(
        [protos[0][picks[:, 0]], protos[1][picks[:, 1]]], axis=1
    )[:, : 8]
    dense = x @ layer.weight.value.T + layer.bias.value
    np.testing.assert_allclose(tab.query(x), dense, atol=1e-9)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 500), heads=st.sampled_from([1, 2]))
def test_property_attention_kernel_finite_and_shaped(seed, heads):
    rng = np.random.default_rng(seed)
    t, dh = 6, 4
    q_train = rng.standard_normal((40, t, dh))
    k_train = rng.standard_normal((40, t, dh))
    v_train = rng.standard_normal((40, t, dh))
    kern = TabularAttention.train(
        q_train, k_train, v_train, n_prototypes=8, n_subspaces_k=2, rng=seed
    )
    q = rng.standard_normal((5, t, dh))
    out = kern.query(q, q + 0.1, q - 0.1)
    assert out.shape == (5, t, dh)
    assert np.all(np.isfinite(out))


def test_attention_kernel_output_bounded_by_v_prototypes():
    """The QKV table rows are sigmoid-weighted dots with V prototypes, so the
    aggregated output magnitude is bounded by C_t x max-table-entry."""
    rng = np.random.default_rng(0)
    t, dh = 6, 4
    data = rng.standard_normal((60, t, dh))
    kern = TabularAttention.train(data, data, data, n_prototypes=8, n_subspaces_k=2, rng=1)
    out = kern.query(data[:8], data[:8], data[:8])
    bound = kern.qkv_table.shape[0] * np.abs(kern.qkv_table).max() + 1e-9
    assert np.abs(out).max() <= bound


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 1000))
def test_property_rebuild_identity_when_weights_unchanged(seed):
    rng = np.random.default_rng(seed)
    layer = Linear(6, 3, rng=seed)
    tab = TabularLinear.train(layer, rng.standard_normal((150, 6)), 8, 2, rng=seed)
    before = tab.table.copy()
    tab.rebuild(layer.weight.value, layer.bias.value)
    np.testing.assert_allclose(tab.table, before, atol=1e-12)
