"""SPSC shared-memory ring: codec fuzz, backpressure, torn-write detection.

The ring carries the sharded engine's data plane, so its failure modes must
be *named*, never silent: a full ring parks and then times out, a dead peer
raises, a torn frame fails its CRC. The seeded fuzz here exercises the codec
through many laps of the ring (wrap-around), frames spanning multiple slots,
and frames larger than the whole ring (streamed through a live consumer).
"""

from __future__ import annotations

import multiprocessing as mp
import random
import threading

import numpy as np
import pytest

from repro.runtime.ring import (
    MAGIC,
    RingDataError,
    RingPeerDead,
    RingTimeout,
    RingWait,
    attach_ring,
    create_ring,
)


@pytest.fixture
def ring_pair():
    """One ring, both endpoints mapped in-process (producer + consumer)."""
    owner = create_ring(slots=8, slot_bytes=32)
    peer = attach_ring(owner.name)
    yield owner, peer
    peer.close()
    owner.close()
    owner.unlink()


# ------------------------------------------------------------------- codec
def test_roundtrip_fuzz_wraparound(ring_pair):
    """Seeded fuzz: random frames over many laps come back byte-identical."""
    prod, cons = ring_pair
    rng = random.Random(1234)
    capacity = prod.slots * prod.slot_bytes
    for i in range(500):
        # Up to capacity - 8 (frame header) so a lone producer never parks.
        n = rng.randrange(0, capacity - 8)
        payload = rng.randbytes(n)
        prod.send(payload, timeout=5.0)
        assert cons.recv(timeout=5.0) == payload, f"frame {i} corrupted"


def test_empty_and_exact_slot_frames(ring_pair):
    prod, cons = ring_pair
    prod.send(b"", timeout=1.0)
    assert cons.recv(timeout=1.0) == b""
    # Exactly one slot (header + payload == slot_bytes) and one byte over.
    for n in (prod.slot_bytes - 8, prod.slot_bytes - 7):
        payload = bytes(range(256))[:n]
        prod.send(payload, timeout=1.0)
        assert cons.recv(timeout=1.0) == payload


def test_queued_frames_preserve_order(ring_pair):
    prod, cons = ring_pair
    frames = [f"frame-{i}".encode() for i in range(6)]
    for f in frames:
        prod.send(f, timeout=1.0)
    assert [cons.recv(timeout=1.0) for _ in frames] == frames


def test_frame_larger_than_ring_streams_through(ring_pair):
    """A frame bigger than the whole ring flows once a consumer drains it."""
    prod, cons = ring_pair
    payload = random.Random(7).randbytes(5 * prod.slots * prod.slot_bytes)
    got: list[bytes] = []
    t = threading.Thread(target=lambda: got.append(cons.recv(timeout=10.0)))
    t.start()
    prod.send(payload, timeout=10.0)
    t.join(timeout=10.0)
    assert got and got[0] == payload


def test_try_recv_and_readable(ring_pair):
    prod, cons = ring_pair
    assert not cons.readable
    assert cons.try_recv() is None
    prod.send(b"ready", timeout=1.0)
    assert cons.readable
    assert cons.try_recv(timeout=1.0) == b"ready"
    assert cons.try_recv() is None


def test_recv_ready_batch_drain(ring_pair):
    """The poller's batch consume: every waiting frame, in order, no block."""
    prod, cons = ring_pair
    assert cons.recv_ready() == []
    frames = [f"frame-{i}".encode() for i in range(5)]
    for f in frames:
        prod.send(f, timeout=1.0)
    assert cons.recv_ready(max_frames=2, timeout=1.0) == frames[:2]
    assert cons.recv_ready(timeout=1.0) == frames[2:]
    assert not cons.readable
    assert cons.recv_ready() == []


def test_parked_send_calls_progress(ring_pair):
    """A producer parked on a full ring invokes ``progress`` every sleep lap
    — the hook the pipelined frontend uses to drain replies from inside a
    blocked send (breaking the mutual-fill deadlock)."""
    prod, cons = ring_pair
    big = b"a" * (prod.slots * prod.slot_bytes - 8)  # fills the whole ring
    prod.send(big, timeout=1.0)
    drained: list[bytes] = []
    prod.send(
        b"second", timeout=5.0,
        progress=lambda: drained.append(cons.recv(timeout=1.0)),
    )
    assert drained == [big]
    assert cons.recv(timeout=1.0) == b"second"


# ------------------------------------------------------------ failure modes
def test_full_ring_backpressure_times_out(ring_pair):
    """With no consumer, a producer that fills the ring parks then raises."""
    prod, _ = ring_pair
    with pytest.raises(RingTimeout):
        prod.send(b"x" * (prod.slots * prod.slot_bytes), timeout=0.2)


def test_recv_timeout_on_empty_ring(ring_pair):
    _, cons = ring_pair
    with pytest.raises(RingTimeout):
        cons.recv(timeout=0.1)


def test_dead_peer_is_detected(ring_pair):
    _, cons = ring_pair
    with pytest.raises(RingPeerDead):
        cons.recv(timeout=5.0, alive=lambda: False)


def test_torn_write_detected_by_crc(ring_pair):
    """Corrupting a published frame's bytes must raise, not decode garbage."""
    prod, cons = ring_pair
    rng = random.Random(99)
    for _ in range(20):
        payload = rng.randbytes(rng.randrange(1, 100))
        prod.send(payload, timeout=1.0)
        # Flip one random byte of the frame in place (header or payload body
        # both count: length corruption is caught by the CRC over the
        # re-sliced payload, body corruption directly).
        slot = cons._tail % cons.slots
        byte = rng.randrange(8, min(cons.slot_bytes, 8 + len(payload)))
        cons._data[slot, byte] ^= 0xFF
        with pytest.raises(RingDataError):
            cons.recv(timeout=1.0)
        # Re-sync the consumer onto a fresh pair for the next round.
        prod._head = cons._tail
        seq = np.arange(prod.slots, dtype=np.uint64) + np.uint64(prod._head)
        for i in range(prod.slots):
            prod._seq[(prod._head + i) % prod.slots] = seq[i]


# -------------------------------------------------------------- validation
def test_create_ring_validates_geometry():
    with pytest.raises(ValueError):
        create_ring(slots=1)
    with pytest.raises(ValueError):
        create_ring(slot_bytes=4)


def test_attach_rejects_foreign_segment():
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(create=True, size=256)
    try:
        shm.buf[:8] = b"NOTARING"
        with pytest.raises(ValueError, match="bad magic"):
            attach_ring(shm.name)
    finally:
        shm.close()
        shm.unlink()


def test_attach_rejects_truncated_segment():
    from multiprocessing import shared_memory

    ring = create_ring(slots=4, slot_bytes=64)
    # A segment claiming a manifest longer than itself.
    shm = shared_memory.SharedMemory(create=True, size=64)
    try:
        shm.buf[:8] = MAGIC
        shm.buf[8:16] = (10_000).to_bytes(8, "little")
        with pytest.raises(ValueError, match="truncated"):
            attach_ring(shm.name)
    finally:
        shm.close()
        shm.unlink()
        ring.close()
        ring.unlink()


# ------------------------------------------------------------ cross-process
def _echo_worker(in_name: str, out_name: str, n_frames: int) -> None:
    inbound = attach_ring(in_name, wait=RingWait(spin=64, sleep_s=100e-6))
    outbound = attach_ring(out_name, wait=RingWait(spin=64, sleep_s=100e-6))
    try:
        for _ in range(n_frames):
            outbound.send(inbound.recv(timeout=30.0), timeout=30.0)
    finally:
        inbound.close()
        outbound.close()


def test_cross_process_echo_roundtrip():
    """Frames echo through a real second process, in order, byte-identical."""
    req = create_ring(slots=16, slot_bytes=64)
    rsp = create_ring(slots=16, slot_bytes=64)
    rng = random.Random(42)
    frames = [rng.randbytes(rng.randrange(0, 500)) for _ in range(50)]
    ctx = mp.get_context("fork" if "fork" in mp.get_all_start_methods() else "spawn")
    proc = ctx.Process(
        target=_echo_worker, args=(req.name, rsp.name, len(frames)), daemon=True
    )
    proc.start()
    try:
        alive = proc.is_alive
        for i, f in enumerate(frames):
            req.send(f, timeout=30.0, alive=alive)
            assert rsp.recv(timeout=30.0, alive=alive) == f, f"frame {i}"
    finally:
        proc.join(timeout=10.0)
        if proc.is_alive():
            proc.terminate()
        req.close()
        req.unlink()
        rsp.close()
        rsp.unlink()
