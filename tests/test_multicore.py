"""Multicore simulator: per-core accounting, shared-resource contention."""

import numpy as np
import pytest

from repro.prefetch import PrecomputedPrefetcher
from repro.sim import HierarchyConfig, LevelConfig, extract_llc_stream
from repro.sim.multicore import CORE_ADDRESS_STRIDE, simulate_multicore
from repro.traces.generators import StreamPhase, compose_trace
from repro.traces.trace import MemoryTrace


def _cfg() -> HierarchyConfig:
    return HierarchyConfig(
        l1d=LevelConfig(4 * 1024, 4, 5.0),
        l2=LevelConfig(16 * 1024, 4, 10.0),
        llc=LevelConfig(64 * 1024, 8, 20.0),
        paging=False,
    )


def _stream_trace(n=2000, gap=12, seed=0):
    return compose_trace(
        [(StreamPhase(0, 10**7, stride_blocks=1), n)], seed=seed, mean_instr_gap=gap
    )


def _hot_trace(n=2000, blocks=8):
    addrs = (np.arange(n) % blocks).astype(np.int64) << 6
    return MemoryTrace(np.arange(1, n + 1) * 10, np.zeros(n, dtype=np.int64), addrs)


def test_validation():
    with pytest.raises(ValueError):
        simulate_multicore([])
    with pytest.raises(ValueError):
        simulate_multicore([_hot_trace(100)], prefetchers=[None, None])


def test_single_core_accounting():
    tr = _stream_trace(1000)
    r = simulate_multicore([tr], config=_cfg())
    assert len(r.cores) == 1
    core = r.cores[0]
    assert core.demand_accesses == 1000
    assert core.ipc > 0
    assert r.llc.accesses == core.demand_misses + r.llc.hits


def test_cores_do_not_alias():
    """Two copies of the same trace live in disjoint address spaces: core 1
    must not hit on core 0's lines."""
    tr = _stream_trace(1500)
    r = simulate_multicore([tr, tr], config=_cfg())
    # both cores miss everything: pure cold streams, no cross-core sharing
    assert r.cores[0].demand_misses == 1500
    assert r.cores[1].demand_misses == 1500
    assert r.llc.hits == 0


def test_address_stride_is_generous():
    tr = _stream_trace(100)
    assert int(tr.block_addrs.max()) < CORE_ADDRESS_STRIDE


def test_shared_llc_contention_slows_cores():
    """Two LLC-hungry cores sharing one LLC run slower than running alone."""
    n = 4000
    # working set ~48KB: fits the 64KB LLC alone, thrashes when doubled
    addrs = (np.arange(n) % 768).astype(np.int64) << 6
    tr = MemoryTrace(np.arange(1, n + 1) * 10, np.zeros(n, dtype=np.int64), addrs)
    alone = simulate_multicore([tr], config=_cfg())
    shared = simulate_multicore([tr, tr], config=_cfg())
    assert shared.cores[0].ipc < alone.cores[0].ipc
    ws = shared.weighted_speedup(alone.cores + alone.cores)
    assert ws < 2.0  # contention: below perfect scaling


def test_weighted_speedup_requires_matching_baselines():
    tr = _hot_trace(500)
    r = simulate_multicore([tr, tr], config=_cfg())
    with pytest.raises(ValueError):
        r.weighted_speedup(r.cores[:1])


def test_hot_cores_dont_contend():
    """L1-resident cores never touch the LLC after warmup: sharing costs only
    the (amortized) warmup fills."""
    tr = _hot_trace(20000)
    alone = simulate_multicore([tr], config=_cfg())
    shared = simulate_multicore([tr, tr, tr, tr], config=_cfg())
    assert shared.cores[0].ipc == pytest.approx(alone.cores[0].ipc, rel=0.02)


def test_per_core_prefetcher_attribution():
    tr = _stream_trace(2500, gap=20)
    cfg = _cfg()
    idxs = extract_llc_stream(tr, cfg)
    sub = tr.block_addrs[idxs]
    lists = [[int(sub[i + 30])] if i + 30 < len(sub) else [] for i in range(len(sub))]
    pf = PrecomputedPrefetcher(lists, name="oracle")
    r = simulate_multicore([tr, tr], prefetchers=[pf, None], config=cfg)
    assert r.cores[0].prefetches_issued > 0
    assert r.cores[1].prefetches_issued == 0
    assert r.cores[0].ipc > r.cores[1].ipc  # same program, one has help


def test_prefetcher_improves_multicore_ipc():
    tr = _stream_trace(2500, gap=20)
    cfg = _cfg()
    idxs = extract_llc_stream(tr, cfg)
    sub = tr.block_addrs[idxs]
    lists = [[int(sub[i + 30])] if i + 30 < len(sub) else [] for i in range(len(sub))]
    pf1 = PrecomputedPrefetcher([list(x) for x in lists], name="o1")
    pf2 = PrecomputedPrefetcher([list(x) for x in lists], name="o2")
    base = simulate_multicore([tr, tr], config=cfg)
    with_pf = simulate_multicore([tr, tr], prefetchers=[pf1, pf2], config=cfg)
    assert with_pf.aggregate_ipc > base.aggregate_ipc


def test_heterogeneous_traces():
    r = simulate_multicore([_hot_trace(1000), _stream_trace(1000, gap=10)], config=_cfg())
    assert r.cores[0].ipc > r.cores[1].ipc  # cache-resident vs streaming


def test_summary_shape():
    r = simulate_multicore([_hot_trace(300)], config=_cfg())
    s = r.summary()
    assert "aggregate_ipc" in s and len(s["cores"]) == 1
    assert s["llc_hit_rate"] >= 0.0


def test_dram_stats_exposed():
    r = simulate_multicore([_stream_trace(800)], config=_cfg())
    assert r.dram["reads"] > 0
