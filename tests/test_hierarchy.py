"""Full-hierarchy simulator: level filtering, timing, prefetch, writebacks."""

import numpy as np
import pytest

from repro.prefetch import PrecomputedPrefetcher
from repro.sim import (
    HierarchyConfig,
    LevelConfig,
    extract_llc_stream,
    ipc_improvement,
    simulate,
    simulate_hierarchy,
)
from repro.sim.dram import DRAMConfig
from repro.traces.generators import StreamPhase, compose_trace
from repro.traces.trace import MemoryTrace


def _stream_trace(n=3000, gap=12):
    return compose_trace([(StreamPhase(0, 10**7, stride_blocks=1), n)], seed=0, mean_instr_gap=gap)


def _tiny_cfg(**kw) -> HierarchyConfig:
    """Small hierarchy so tests exercise evictions quickly."""
    defaults = dict(
        l1d=LevelConfig(4 * 1024, 4, 5.0),
        l2=LevelConfig(16 * 1024, 4, 10.0),
        llc=LevelConfig(64 * 1024, 8, 20.0),
        paging=False,
    )
    defaults.update(kw)
    return HierarchyConfig(**defaults)


def _hot_trace(n=2000, blocks=8):
    """Working set of a few blocks: L1-resident after warmup."""
    addrs = (np.arange(n) % blocks).astype(np.int64) << 6
    return MemoryTrace(np.arange(1, n + 1) * 10, np.zeros(n, dtype=np.int64), addrs)


# ---------------------------------------------------------------- filtering
def test_l1_resident_workload_never_reaches_llc():
    r = simulate_hierarchy(_hot_trace(), config=_tiny_cfg())
    assert r.l1d.hit_rate > 0.99
    assert r.llc.accesses <= 8
    assert r.l1d.accesses == 2000


def test_extract_llc_stream_matches_timed_run():
    tr = _stream_trace(1500)
    cfg = _tiny_cfg()
    idxs = extract_llc_stream(tr, cfg)
    r = simulate_hierarchy(tr, config=cfg)
    assert len(idxs) == r.llc.accesses


def test_streaming_misses_at_every_level():
    tr = _stream_trace(2000)
    r = simulate_hierarchy(tr, config=_tiny_cfg())
    assert r.l1d.hit_rate == 0.0
    assert r.llc.misses == 2000


def test_level_stats_are_consistent():
    tr = _stream_trace(1000)
    r = simulate_hierarchy(tr, config=_tiny_cfg())
    assert r.l1d.accesses == 1000
    assert r.l2.accesses == r.l1d.misses
    assert r.llc.accesses == r.l2.misses
    assert r.llc.hits + r.llc.misses == r.llc.accesses


# ------------------------------------------------------------------ timing
def test_hot_workload_ipc_beats_streaming():
    cfg = _tiny_cfg()
    hot = simulate_hierarchy(_hot_trace(2000), config=cfg)
    cold = simulate_hierarchy(_stream_trace(2000, gap=10), config=cfg)
    assert hot.sim.ipc > cold.sim.ipc


def test_agrees_with_flat_simulator_on_l1_resident_set():
    """When everything hits L1, both simulators see ~no memory stalls, so
    IPC approaches the width-bound limit in both."""
    tr = _hot_trace(3000)
    h = simulate_hierarchy(tr, config=_tiny_cfg())
    f = simulate(tr)
    assert abs(h.sim.ipc - f.ipc) / f.ipc < 0.15


def test_dram_latency_dominates_misses():
    tr = _stream_trace(800, gap=50)
    fast_dram = _tiny_cfg(dram=DRAMConfig(t_cas=10.0, t_rcd=10.0, t_rp=10.0, t_burst=4.0))
    slow_dram = _tiny_cfg(dram=DRAMConfig(t_cas=200.0, t_rcd=200.0, t_rp=200.0, t_burst=16.0))
    fast = simulate_hierarchy(tr, config=fast_dram)
    slow = simulate_hierarchy(tr, config=slow_dram)
    assert fast.sim.ipc > slow.sim.ipc


# ------------------------------------------------------------------ paging
def test_paging_scatters_rows():
    """Random frame allocation must reduce the DRAM row hit rate of a
    page-crossing linear stream vs. contiguous allocation."""
    tr = _stream_trace(4000)
    on = simulate_hierarchy(tr, config=_tiny_cfg(paging=True))
    off = simulate_hierarchy(tr, config=_tiny_cfg(paging=False))
    assert on.pages_touched > 0
    assert on.dram["row_hit_rate"] <= off.dram["row_hit_rate"]


def test_tlb_reported():
    tr = _stream_trace(2000)
    r = simulate_hierarchy(tr, config=_tiny_cfg(tlb=True, tlb_entries=8))
    assert 0.0 <= r.tlb_hit_rate <= 1.0


def test_tlb_miss_latency_costs_cycles():
    tr = _stream_trace(2000)
    with_tlb = simulate_hierarchy(
        tr, config=_tiny_cfg(tlb=True, tlb_entries=2, tlb_walk_latency=500.0)
    )
    without = simulate_hierarchy(tr, config=_tiny_cfg())
    assert with_tlb.sim.cycles > without.sim.cycles


# -------------------------------------------------------------- write-backs
def test_writes_generate_writeback_traffic():
    n = 4000
    addrs = (np.arange(n) % 512).astype(np.int64) << 6  # cycles through 512 blocks
    tr = MemoryTrace(np.arange(1, n + 1) * 10, np.zeros(n, dtype=np.int64), addrs)
    writes = np.ones(n, dtype=bool)
    cfg = _tiny_cfg(l1d=LevelConfig(2 * 1024, 2, 5.0), l2=LevelConfig(4 * 1024, 2, 10.0),
                    llc=LevelConfig(8 * 1024, 2, 20.0))
    r = simulate_hierarchy(tr, config=cfg, writes=writes)
    reads_only = simulate_hierarchy(tr, config=cfg)
    assert r.l1d.writebacks > 0
    assert r.dram["writes"] > 0
    assert reads_only.dram["writes"] == 0


def test_writes_mask_length_checked():
    tr = _stream_trace(100)
    with pytest.raises(ValueError, match="writes mask"):
        simulate_hierarchy(tr, config=_tiny_cfg(), writes=np.ones(5, dtype=bool))


# -------------------------------------------------------------- prefetching
def test_oracle_prefetcher_improves_hierarchy_ipc():
    # Latency-bound DRAM (slow access, fast bus) so timely prefetching has
    # real headroom; the default open-page DRAM makes linear streams nearly
    # free via row hits, which is itself asserted elsewhere.
    tr = _stream_trace(3000, gap=20)
    cfg = _tiny_cfg(dram=DRAMConfig(t_cas=150.0, t_rcd=150.0, t_rp=150.0, t_burst=4.0))
    base = simulate_hierarchy(tr, config=cfg)
    # Oracle over the LLC stream: prefetch 80 LLC-accesses (~400 cycles) ahead.
    idxs = extract_llc_stream(tr, cfg)
    sub_blocks = tr.block_addrs[idxs]
    lists = [
        [int(sub_blocks[i + 80])] if i + 80 < len(sub_blocks) else []
        for i in range(len(sub_blocks))
    ]
    pf = PrecomputedPrefetcher(lists, name="oracle")
    r = simulate_hierarchy(tr, pf, config=cfg)
    assert r.sim.prefetches_issued > 0
    assert r.sim.accuracy > 0.8
    assert ipc_improvement(r.sim, base.sim) > 0.15


def test_prefetch_latency_hurts_in_hierarchy():
    tr = _stream_trace(3000, gap=20)
    cfg = _tiny_cfg()
    idxs = extract_llc_stream(tr, cfg)
    sub_blocks = tr.block_addrs[idxs]
    lists = [
        [int(sub_blocks[i + 10])] if i + 10 < len(sub_blocks) else []
        for i in range(len(sub_blocks))
    ]
    fast = PrecomputedPrefetcher([list(x) for x in lists], name="fast", latency_cycles=0)
    slow = PrecomputedPrefetcher([list(x) for x in lists], name="slow", latency_cycles=30_000)
    r_fast = simulate_hierarchy(tr, fast, config=cfg)
    r_slow = simulate_hierarchy(tr, slow, config=cfg)
    assert r_fast.sim.ipc >= r_slow.sim.ipc


def test_inclusive_back_invalidation():
    """After an LLC eviction the block must be gone from L1/L2 too: re-access
    must reach the LLC again (no inner-level stale hits)."""
    cfg = HierarchyConfig(
        l1d=LevelConfig(512, 2, 5.0),  # 4 sets x 2 ways = 8 blocks
        l2=LevelConfig(1024, 2, 10.0),
        llc=LevelConfig(2048, 2, 20.0),  # 32 blocks total
        paging=False,
    )
    n = 3000
    addrs = (np.arange(n) % 256).astype(np.int64) << 6  # way beyond LLC capacity
    tr = MemoryTrace(np.arange(1, n + 1) * 10, np.zeros(n, dtype=np.int64), addrs)
    r = simulate_hierarchy(tr, config=cfg)
    # cyclic scan >> capacity: every access must miss everywhere
    assert r.l1d.hit_rate == 0.0 and r.llc.hit_rate == 0.0


def test_summary_fields():
    r = simulate_hierarchy(_stream_trace(500), config=_tiny_cfg(), name="s")
    s = r.summary()
    for key in ("l1d_hit_rate", "l2_hit_rate", "llc_hit_rate", "dram_row_hit_rate"):
        assert key in s
    assert r.l1d.as_dict()["name"] == "L1D"
