"""PolicyCache: geometry, eviction reporting, dirty bits, invalidation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.cache import SetAssocCache
from repro.sim.policy_cache import PolicyCache
from repro.sim.replacement import LRUPolicy, policy_names


def test_basic_fill_and_lookup():
    c = PolicyCache(4, 2)
    assert c.lookup(0x20) is None
    c.fill(0x20)
    line = c.lookup(0x20)
    assert line is not None and line.block == 0x20


def test_geometry_validation():
    with pytest.raises(ValueError):
        PolicyCache(3, 2)
    with pytest.raises(ValueError):
        PolicyCache(4, 0)
    with pytest.raises(ValueError, match="geometry"):
        PolicyCache(4, 2, LRUPolicy(8, 2))


def test_from_capacity_rounds_sets_to_power_of_two():
    c = PolicyCache.from_capacity(64 * 1024, n_ways=12)  # 85 sets -> 64
    assert c.n_sets == 64 and c.n_ways == 12
    with pytest.raises(ValueError):
        PolicyCache.from_capacity(16, n_ways=12)


def test_eviction_reports_victim():
    c = PolicyCache(1, 2)
    c.fill(1)
    c.fill(2)
    victim = c.fill(3)
    assert victim is not None and victim.block == 1
    assert c.peek(1) is None and c.peek(2) is not None and c.peek(3) is not None


def test_dirty_line_roundtrip():
    c = PolicyCache(1, 1)
    c.fill(1)
    c.lookup(1, write=True)
    victim = c.fill(2)
    assert victim is not None and victim.block == 1 and victim.dirty


def test_clean_eviction_not_dirty():
    c = PolicyCache(1, 1)
    c.fill(1)
    victim = c.fill(2)
    assert victim is not None and not victim.dirty


def test_fill_existing_merges_metadata():
    c = PolicyCache(1, 2)
    c.fill(5, prefetched=True, ready_cycle=100.0)
    assert c.fill(5, dirty=True, ready_cycle=50.0) is None  # no victim
    line = c.peek(5)
    assert line.dirty and line.ready_cycle == 50.0


def test_regression_demand_fill_preserves_prefetched_bit():
    """A demand fill on an in-flight prefetched line must not erase the
    prefetched bit — the late prefetch stays in the used/unused taxonomy
    and is counted as a late fill (the old merge zeroed the bit)."""
    c = PolicyCache(1, 2)
    c.fill(5, prefetched=True, ready_cycle=100.0)
    c.fill(5, ready_cycle=50.0)  # demand arrives before the prefetch lands
    line = c.peek(5)
    assert line.prefetched, "late prefetch vanished from the taxonomy"
    assert c.late_fills == 1
    # The eviction report must still carry the bit.
    c.fill(5 + 1)  # fill the other way
    victim = c.fill(5 + 2)  # now evict
    evicted = {victim.block: victim}
    assert 5 not in evicted or evicted[5].prefetched


def test_regression_late_fill_counted_once_and_reset():
    c = PolicyCache(1, 4)
    c.fill(1, prefetched=True)
    c.fill(1)  # late
    c.fill(1)  # still resident, still unused: a second demand fill (e.g. an
    c.fill(1)  # MSHR merge) keeps counting — each one paid a real miss
    assert c.late_fills == 3
    c.fill(2)
    c.fill(2, prefetched=True)  # prefetch landing on a demand line: not late
    assert c.late_fills == 3
    assert c.peek(2).prefetched is False  # demand-resident line stays demand
    c.reset()
    assert c.late_fills == 0


def test_regression_invalidate_informs_replacement_policy():
    """invalidate() must clear the policy's per-way state: after a refill of
    the freed way, the PLRU tree may not still point away from it as if the
    dead line had just been touched."""
    c = PolicyCache(1, 4, "plru")
    for b in range(4):
        c.fill(b)
    c.invalidate(2)
    # The freed way must be the policy's preferred victim now.
    assert c.policy.victim(0) == 2
    # And the refill goes into the freed way without evicting anyone.
    assert c.fill(99) is None
    assert c.occupancy() == 4


def test_invalidate():
    c = PolicyCache(2, 2)
    c.fill(4, dirty=True)
    line = c.invalidate(4)
    assert line is not None and line.dirty
    assert c.peek(4) is None
    assert c.invalidate(4) is None
    assert c.occupancy() == 0


def test_invalid_ways_filled_before_eviction():
    c = PolicyCache(1, 4)
    for b in range(4):
        assert c.fill(b) is None  # no evictions while ways remain
    assert c.fill(99) is not None


def test_lru_policy_cache_matches_fast_cache():
    """PolicyCache('lru') must produce the same hit/miss stream as the
    dict-ordered SetAssocCache on any access sequence."""
    rng = np.random.default_rng(42)
    blocks = rng.integers(0, 64, size=2000)
    fast = SetAssocCache(4, 4)
    slow = PolicyCache(4, 4, "lru")
    for b in blocks:
        b = int(b)
        fast_hit = fast.lookup(b) is not None
        slow_hit = slow.lookup(b) is not None
        assert fast_hit == slow_hit
        if not fast_hit:
            fast.insert(b, 0.0, False)
            slow.fill(b)


def test_reset_clears_everything():
    c = PolicyCache(2, 2)
    for b in range(10):
        c.fill(b)
    c.reset()
    assert c.occupancy() == 0
    assert c.blocks() == []


@settings(max_examples=20, deadline=None)
@given(
    policy=st.sampled_from(policy_names()),
    blocks=st.lists(st.integers(0, 127), min_size=1, max_size=300),
)
def test_property_occupancy_bounded_and_contents_subset(policy, blocks):
    c = PolicyCache(4, 4, policy)
    inserted = set()
    for b in blocks:
        if c.lookup(b) is None:
            c.fill(b)
        inserted.add(b)
    assert c.occupancy() <= 16
    assert set(c.blocks()) <= inserted
    # every resident block must be findable
    for b in c.blocks():
        assert c.peek(b) is not None


@settings(max_examples=20, deadline=None)
@given(
    policy=st.sampled_from(policy_names()),
    blocks=st.lists(st.integers(0, 31), min_size=1, max_size=120),
)
def test_property_immediate_reaccess_hits(policy, blocks):
    """Touching a block right after filling it must hit under any policy."""
    c = PolicyCache(2, 4, policy)
    for b in blocks:
        if c.lookup(b) is None:
            c.fill(b)
        assert c.peek(b) is not None
