"""Extension features: prefetch filter, L2 filtering, OPQ."""

import numpy as np
import pytest

from repro.prefetch import NextLinePrefetcher
from repro.prefetch.filter import FilteredPrefetcher
from repro.quantization import ProductQuantizer
from repro.quantization.opq import RotatedProductQuantizer
from repro.sim.multilevel import l2_filter, miss_rate_profile
from repro.traces.generators import StreamPhase, compose_trace
from repro.traces.trace import MemoryTrace


# ----------------------------------------------------------- prefetch filter
def test_filter_suppresses_duplicates():
    tr = compose_trace([(StreamPhase(0, 10**6), 500)], seed=0)
    nl = NextLinePrefetcher(degree=4)  # overlapping windows: heavy duplication
    f = FilteredPrefetcher(nl, window=512)
    lists = f.prefetch_lists(tr)
    assert f.last_raw_requests == 4 * 500
    assert f.last_filtered_requests < f.last_raw_requests
    assert 0.5 < f.redundancy < 1.0
    # the union of issued blocks is unchanged (nothing new was lost forever)
    raw_union = set(b for l in nl.prefetch_lists(tr) for b in l)
    kept_union = set(b for l in lists for b in l)
    assert kept_union == raw_union


def test_filter_window_forgetting():
    """A tiny window forgets, so re-requests after eviction pass through."""
    addrs = np.array([0, 64, 0, 64] * 50, dtype=np.int64)
    tr = MemoryTrace(np.arange(1, 201) * 10, np.zeros(200, dtype=np.int64), addrs)
    nl = NextLinePrefetcher(degree=1)
    tight = FilteredPrefetcher(nl, window=1)
    loose = FilteredPrefetcher(nl, window=1024)
    tight.prefetch_lists(tr)
    loose.prefetch_lists(tr)
    assert tight.last_filtered_requests > loose.last_filtered_requests


def test_filter_metadata():
    nl = NextLinePrefetcher(degree=1)
    f = FilteredPrefetcher(nl, window=128)
    assert f.name == "NextLine+filter"
    assert f.latency_cycles == nl.latency_cycles
    assert f.storage_bytes > nl.storage_bytes
    with pytest.raises(ValueError):
        FilteredPrefetcher(nl, window=0)


# -------------------------------------------------------------- L2 filtering
def test_l2_filter_removes_hits():
    # A small loop fits in L2: after the first lap everything is filtered.
    ph = StreamPhase(0, 100)  # 100-block loop
    tr = compose_trace([(ph, 1000)], seed=0)
    llc_stream = l2_filter(tr, capacity_bytes=64 * 1024, n_ways=8)
    assert len(llc_stream) == 100  # only the cold lap survives
    assert np.array_equal(np.sort(np.unique(llc_stream.block_addrs)), np.arange(100))


def test_l2_filter_preserves_streaming():
    ph = StreamPhase(0, 10**6)  # never revisits: nothing to filter
    tr = compose_trace([(ph, 2000)], seed=0)
    out = l2_filter(tr)
    assert len(out) == 2000


def test_l2_filter_preserves_metadata():
    ph = StreamPhase(0, 100, pc=0x42)
    tr = compose_trace([(ph, 300)], seed=0, name="loop")
    out = l2_filter(tr, capacity_bytes=64 * 1024)
    assert out.name == "loop"
    assert (out.pcs == 0x42).all()
    assert np.all(np.diff(out.instr_ids) >= 0)


def test_miss_rate_profile_monotone():
    ph = StreamPhase(0, 4096)  # 256 KB working set
    tr = compose_trace([(ph, 20_000)], seed=0)
    prof = miss_rate_profile(tr, [16 * 1024, 64 * 1024, 1024 * 1024])
    rates = list(prof.values())
    assert rates[0] >= rates[1] >= rates[2]
    assert rates[2] < 0.3  # fits comfortably at 1 MB


# ------------------------------------------------------------------- OPQ
def _correlated_data(rng, n=600, d=8):
    # strongly correlated dims: the case where a rotation helps PQ
    base = rng.standard_normal((n, 2))
    mix = rng.standard_normal((2, d))
    return base @ mix + 0.05 * rng.standard_normal((n, d))


def test_opq_beats_plain_pq_on_correlated_data(rng):
    x = _correlated_data(rng)
    plain = ProductQuantizer(8, 4, 8, rng=0).fit(x).quantization_error(x)
    opq = RotatedProductQuantizer(8, 4, 8, n_iters=5, rng=0).fit(x)
    assert opq.quantization_error(x) <= plain * 1.05  # >= parity, usually better


def test_opq_rotation_is_orthogonal(rng):
    x = _correlated_data(rng)
    opq = RotatedProductQuantizer(8, 2, 8, n_iters=3, rng=0).fit(x)
    r = opq.rotation
    assert np.allclose(r @ r.T, np.eye(8), atol=1e-8)


def test_opq_validation(rng):
    opq = RotatedProductQuantizer(8, 2, 8)
    with pytest.raises(RuntimeError):
        opq.encode(np.zeros((3, 8)))
    with pytest.raises(ValueError):
        opq.fit(np.zeros((10, 9)))
