"""Multi-stream shared-model serving: isolation, equivalence, coalescing.

The tentpole bar: each stream served through a shared
:class:`MultiStreamEngine` must emit **bit-identically** to serving that
stream alone through the single-stream path (and hence to the batch path).
On top of that, shared batching must actually coalesce: under a latency
deadline it issues measurably fewer ``predict_proba`` calls than per-stream
batching at the same ``B``.
"""

from __future__ import annotations

import pytest

from repro.runtime import (
    BatchAdapter,
    serve,
    serve_interleaved,
)

# `dart` and `four_traces` are the shared session fixtures in conftest.py.


# ------------------------------------------------------------------ equivalence
def test_four_streams_match_solo_runs(dart, four_traces):
    """Acceptance bar: N=4 interleaved streams == 4 solo single-stream runs."""
    engine = dart.multistream(batch_size=64)
    handles = engine.streams(4)
    _, per_stream, lists = serve_interleaved(handles, four_traces, collect=True)
    assert engine.predict_calls > 0
    for i, trace in enumerate(four_traces):
        solo = BatchAdapter(dart.stream(batch_size=64)).prefetch_lists(trace)
        assert lists[i] == solo, f"stream {i} diverged from its solo run"
        assert per_stream[i].accesses == len(trace)
    assert any(any(row) for row in lists[0])  # the model actually prefetches


def test_cross_stream_isolation_uneven_interleave(dart, four_traces):
    """Two different traces, unevenly interleaved by hand (2:1), must each
    still reproduce their solo runs — per-tenant state never leaks."""
    a, b = four_traces[0], four_traces[1].slice(0, 300)
    engine = dart.multistream(batch_size=32)
    ha, hb = engine.stream("a"), engine.stream("b")
    collected = {ha.index: [[] for _ in range(len(a))], hb.index: [[] for _ in range(len(b))]}

    def pump(handle, trace, i):
        for em in handle.ingest(int(trace.pcs[i]), int(trace.addrs[i])):
            collected[handle.index][em.seq] = list(em.blocks)

    ia = ib = 0
    while ia < len(a) or ib < len(b):
        for _ in range(2):  # two accesses of A per access of B
            if ia < len(a):
                pump(ha, a, ia)
                ia += 1
        if ib < len(b):
            pump(hb, b, ib)
            ib += 1
    for handle in (ha, hb):
        for em in handle.flush():
            collected[handle.index][em.seq] = list(em.blocks)

    assert collected[ha.index] == dart.prefetch_lists(a)
    assert collected[hb.index] == dart.prefetch_lists(b)


def test_handles_preserve_emission_invariant(dart, four_traces):
    """Per handle: exactly one emission per access, ascending seq."""
    engine = dart.multistream(batch_size=17)
    handles = engine.streams(3)
    seqs = {h.index: [] for h in handles}
    n = 250
    for i in range(n):
        for h, trace in zip(handles, four_traces):
            for em in h.ingest(int(trace.pcs[i]), int(trace.addrs[i])):
                seqs[h.index].append(em.seq)
    for h in handles:
        seqs[h.index].extend(em.seq for em in h.flush())
    for h in handles:
        assert seqs[h.index] == list(range(n))


# ------------------------------------------------------------------- coalescing
def test_shared_batching_halves_predict_calls(dart, four_traces):
    """Acceptance bar: >=2x fewer predict calls than per-stream batching at
    the same B under a latency deadline (where per-stream batches run small)."""
    b, w = 64, 8
    engine = dart.multistream(batch_size=b, max_wait=w)
    serve_interleaved(engine.streams(4), four_traces)
    shared_calls = engine.predict_calls

    solos = [dart.stream(batch_size=b, max_wait=w) for _ in range(4)]
    serve_interleaved(solos, four_traces)
    solo_calls = sum(s.predict_calls for s in solos)

    assert shared_calls > 0
    assert solo_calls >= 2 * shared_calls, (solo_calls, shared_calls)
    # Same questions answered either way.
    assert engine.queries_answered == sum(s._mb._path.queries_answered for s in solos)


def test_mean_batch_fill_grows_with_streams(dart, four_traces):
    """More tenants -> fuller shared batches at the same deadline."""
    fills = []
    for n in (1, 4):
        engine = dart.multistream(batch_size=64, max_wait=8)
        serve_interleaved(engine.streams(n), four_traces[:n])
        fills.append(engine.stats()["mean_batch_fill"])
    assert fills[1] > fills[0]


# --------------------------------------------------------------------- protocol
def test_flush_on_one_handle_answers_everyone(dart, four_traces):
    """A flush drains the whole engine; other handles get outbox deliveries."""
    engine = dart.multistream(batch_size=512)
    h0, h1 = engine.streams(2)
    t = dart.config.history_len
    a, b = four_traces[0], four_traces[1]
    for i in range(t + 5):  # past warm-up, below batch size: all queries pend
        h0.ingest(int(a.pcs[i]), int(a.addrs[i]))
        h1.ingest(int(b.pcs[i]), int(b.addrs[i]))
    assert h0.pending and h1.pending
    ems0 = h0.flush()  # one coalesced predict answers both streams
    assert engine.predict_calls == 1
    assert ems0 and not h0.pending and not h1.pending
    assert h1.poll()  # h1's answers arrived in its outbox


def test_per_handle_reset_is_isolated(dart, four_traces):
    """Resetting one tenant must not disturb another's in-flight state."""
    engine = dart.multistream(batch_size=64)
    h0, h1 = engine.streams(2)
    a, b = four_traces[0].slice(0, 400), four_traces[1].slice(0, 400)
    collected = [[] for _ in range(len(b))]
    for i in range(100):  # dirty both streams
        h0.ingest(int(a.pcs[i]), int(a.addrs[i]))
        h1.ingest(int(b.pcs[i]), int(b.addrs[i]))
    h0.reset()
    h1.reset()
    assert h0.pending == 0 and h0.seq == 0
    # Serve b through h1 after the reset: must match its solo run.
    for i in range(len(b)):
        for em in h1.ingest(int(b.pcs[i]), int(b.addrs[i])):
            collected[em.seq] = list(em.blocks)
    for em in h1.flush():
        collected[em.seq] = list(em.blocks)
    assert collected == dart.prefetch_lists(b)


def test_serve_single_handle_through_engine_loop(dart, four_traces):
    """A StreamHandle is a full StreamingPrefetcher: engine.serve drives it."""
    engine = dart.multistream(batch_size=32)
    handle = engine.stream()
    stats, lists = serve(handle, four_traces[0], collect=True)
    assert stats.accesses == len(four_traces[0])
    assert lists == dart.prefetch_lists(four_traces[0])


def test_engine_rejects_bad_config(dart):
    with pytest.raises(ValueError):
        dart.multistream(batch_size=0)
    with pytest.raises(ValueError):
        dart.multistream(max_wait=0)
    engine = dart.multistream()
    with pytest.raises(ValueError):
        engine.streams(2, names=["only-one"])
    with pytest.raises(ValueError):
        serve_interleaved([engine.stream()], [])


def test_engine_carries_cost_metadata(dart):
    engine = dart.multistream()
    handle = engine.stream()
    assert handle.latency_cycles == dart.latency_cycles
    assert handle.storage_bytes == dart.storage_bytes
    assert engine.stats()["model_copies"] == 1


# ------------------------------------------------------------------- multicore
def test_multicore_shared_model_matches_per_core_instances(dart, four_traces, tabular_student, preprocess_config):
    """One shared table model serving 2 cores == 2 private model instances."""
    from repro.prefetch import DARTPrefetcher
    from repro.sim import HierarchyConfig, LevelConfig
    from repro.sim.multicore import simulate_multicore

    tab, _ = tabular_student
    cfg = HierarchyConfig(
        l1d=LevelConfig(4 * 1024, 4, 5.0),
        l2=LevelConfig(16 * 1024, 4, 10.0),
        llc=LevelConfig(64 * 1024, 8, 20.0),
        paging=False,
    )
    traces = [four_traces[0], four_traces[1]]
    replicated = simulate_multicore(
        traces,
        prefetchers=[
            DARTPrefetcher(tab, preprocess_config, threshold=0.4, max_degree=3),
            DARTPrefetcher(tab, preprocess_config, threshold=0.4, max_degree=3),
        ],
        config=cfg,
    )
    shared = simulate_multicore(
        traces,
        config=cfg,
        shared_prefetcher=dart,
        shared_stream_kwargs={"batch_size": 32, "max_wait": 8},
    )
    for a, b in zip(replicated.cores, shared.cores):
        assert (a.cycles, a.prefetches_issued, a.prefetches_useful) == (
            b.cycles,
            b.prefetches_issued,
            b.prefetches_useful,
        )
    assert shared.predictor["model_copies"] == 1
    assert shared.predictor["streams"] == 2
    assert shared.predictor["predict_calls"] > 0
    assert "shared_predictor" in shared.summary()


def test_multicore_shared_model_validation(dart, four_traces):
    from repro.prefetch import NextLinePrefetcher
    from repro.sim.multicore import simulate_multicore

    with pytest.raises(ValueError):
        simulate_multicore(
            [four_traces[0]], prefetchers=[NextLinePrefetcher()], shared_prefetcher=dart
        )
    with pytest.raises(TypeError):
        simulate_multicore([four_traces[0]], shared_prefetcher=NextLinePrefetcher())


def test_aggregate_latency_counts_equal_sum_of_streams(dart, four_traces):
    """Regression: the aggregate sketch counts each timed delivery exactly
    once per stream — the end-of-run drain included, even when every stream
    ends on the same tick and the first handle's drain flush answers all of
    them (the others then deliver from their outboxes).
    """
    # Equal-length traces ending on the same tick, batch size large enough
    # that a full batch worth of queries is still pending at the drain.
    traces = [t.slice(0, 300) for t in four_traces]
    engine = dart.multistream(batch_size=4096)
    agg, per_stream, _ = serve_interleaved(engine.streams(4), traces)
    counts = [s.extra["latency_count"] for s in per_stream]
    assert agg.extra["latency_count"] == sum(counts), (agg.extra, counts)
    # Every access was timed, plus exactly one drain-delivery per stream.
    assert counts == [300 + 1] * 4


def test_max_wait_deadline_bounds_pending_per_stream(dart, four_traces):
    engine = dart.multistream(batch_size=512, max_wait=16)
    handles = engine.streams(2)
    for i in range(300):
        for h, trace in zip(handles, four_traces):
            h.ingest(int(trace.pcs[i]), int(trace.addrs[i]))
            assert h.pending <= 16
