"""Training loop and knowledge distillation (Table VI's mechanism)."""

import numpy as np
import pytest

from repro.core.evaluate import f1_score
from repro.distillation import TrainConfig, distill_student, evaluate_model, train_model
from repro.models import AttentionPredictor, ModelConfig


def test_training_reduces_loss(split_dataset, tiny_model_config):
    ds_train, _ = split_dataset
    m = AttentionPredictor(tiny_model_config, ds_train.x_addr.shape[2], ds_train.x_pc.shape[2], rng=5)
    hist = train_model(m, ds_train, config=TrainConfig(epochs=3, batch_size=64, lr=2e-3, seed=0))
    assert hist["loss"][-1] < hist["loss"][0]


def test_trained_student_beats_random(split_dataset, trained_student):
    _, ds_val = split_dataset
    f1 = evaluate_model(trained_student, ds_val)
    assert f1 > 0.5  # the fixture trace is stream-dominated: easily learnable


def test_val_history_recorded(split_dataset, tiny_model_config):
    ds_train, ds_val = split_dataset
    m = AttentionPredictor(tiny_model_config, ds_train.x_addr.shape[2], ds_train.x_pc.shape[2], rng=6)
    hist = train_model(m, ds_train, ds_val, TrainConfig(epochs=2, batch_size=64, seed=0))
    assert len(hist["val_f1"]) == 2


def test_early_stopping_restores_best(split_dataset, tiny_model_config):
    ds_train, ds_val = split_dataset
    m = AttentionPredictor(tiny_model_config, ds_train.x_addr.shape[2], ds_train.x_pc.shape[2], rng=7)
    cfg = TrainConfig(epochs=6, batch_size=64, lr=2e-3, seed=0, patience=2)
    hist = train_model(m, ds_train, ds_val, cfg)
    final = evaluate_model(m, ds_val)
    assert final >= max(hist["val_f1"]) - 1e-6


def test_distill_student_runs_and_matches_dims(split_dataset, trained_student):
    ds_train, ds_val = split_dataset
    student_cfg = trained_student.config.scaled(dim=8, heads=2)
    student, hist = distill_student(
        trained_student,  # use the trained model as the "teacher"
        student_cfg,
        ds_train,
        ds_val,
        TrainConfig(epochs=2, batch_size=64, lr=2e-3, seed=1),
        rng=9,
    )
    assert student.config.dim == 8
    assert len(hist["loss"]) == 2
    f1 = evaluate_model(student, ds_val)
    assert f1 > 0.3


def test_distill_rejects_bitmap_mismatch(split_dataset, trained_student):
    ds_train, _ = split_dataset
    bad_cfg = trained_student.config.scaled(bitmap_size=16)
    with pytest.raises(ValueError):
        distill_student(trained_student, bad_cfg, ds_train)


def test_kd_soft_targets_transfer_knowledge(split_dataset, trained_student, tiny_model_config):
    """A student trained only on KD (lambda=1) should still learn signal."""
    ds_train, ds_val = split_dataset
    student = AttentionPredictor(
        tiny_model_config.scaled(dim=8), ds_train.x_addr.shape[2], ds_train.x_pc.shape[2], rng=11
    )
    cfg = TrainConfig(epochs=3, batch_size=64, lr=2e-3, seed=0, kd_lambda=1.0)
    train_model(student, ds_train, config=cfg, teacher=trained_student)
    probs = student.predict_proba(ds_val.x_addr, ds_val.x_pc)
    assert f1_score(ds_val.labels, probs) > 0.3
