"""Table refresh on weight drift (TabularLinear.rebuild)."""

import numpy as np
import pytest

from repro.nn.linear import Linear
from repro.tabularization import TabularLinear


def _setup(seed=0):
    rng = np.random.default_rng(seed)
    layer = Linear(8, 5, rng=1)
    x = rng.standard_normal((400, 8))
    tab = TabularLinear.train(layer, x, n_prototypes=32, n_subspaces=2, rng=2)
    return layer, x, tab


def test_rebuild_tracks_new_weights():
    layer, x, tab = _setup()
    before = tab.query(x)
    new_w = layer.weight.value * 0.5 + 0.1
    new_b = layer.bias.value + 1.0
    tab.rebuild(new_w, new_b)
    after = tab.query(x)
    # the refreshed table approximates the *new* affine map
    target = x @ new_w.T + new_b
    old_target = x @ layer.weight.value.T + layer.bias.value
    assert np.abs(after - target).mean() < np.abs(after - old_target).mean()
    assert not np.allclose(before, after)


def test_rebuild_is_equivalent_to_retraining_table_only():
    layer, x, tab = _setup(seed=3)
    new_w = layer.weight.value + 0.05
    tab.rebuild(new_w, layer.bias.value)
    # a freshly trained kernel with the same prototypes must agree exactly
    from repro.quantization.pq import build_weight_table

    expected = build_weight_table(tab.pq, new_w, layer.bias.value)
    np.testing.assert_allclose(tab.table, expected)


def test_rebuild_shape_validation():
    _, _, tab = _setup()
    with pytest.raises(ValueError, match="weight shape"):
        tab.rebuild(np.zeros((3, 3)))


def test_rebuild_returns_self_for_chaining():
    layer, x, tab = _setup()
    assert tab.rebuild(layer.weight.value, layer.bias.value) is tab


def test_rebuild_approximation_quality_preserved():
    """After a small drift, the rebuilt table's error vs the new layer is in
    the same ballpark as the original table's error vs the original layer."""
    layer, x, tab = _setup(seed=4)
    err_before = np.abs(tab.query(x) - (x @ layer.weight.value.T + layer.bias.value)).mean()
    new_w = layer.weight.value + 0.01
    tab.rebuild(new_w, layer.bias.value)
    err_after = np.abs(tab.query(x) - (x @ new_w.T + layer.bias.value)).mean()
    assert err_after < 2.0 * err_before + 1e-6
