"""Behavioral tests for nn layers beyond gradient checks."""

import numpy as np
import pytest

from repro.nn import LayerNorm, Linear, MultiHeadSelfAttention, TransformerEncoderLayer
from repro.nn.functional import one_hot, sigmoid, softmax
from repro.nn.transformer import MeanPool, PositionalEncoding


def test_linear_matches_manual(rng):
    lin = Linear(4, 3, rng=0)
    x = rng.standard_normal((2, 5, 4))
    y = lin.forward(x)
    ref = x @ lin.weight.value.T + lin.bias.value
    assert np.allclose(y, ref)


def test_linear_no_bias():
    lin = Linear(4, 3, bias=False, rng=0)
    assert lin.bias is None
    assert lin.num_parameters() == 12


def test_layernorm_normalizes(rng):
    ln = LayerNorm(16)
    x = rng.standard_normal((3, 4, 16)) * 10 + 5
    y = ln.forward(x)
    assert np.allclose(y.mean(axis=-1), 0.0, atol=1e-9)
    assert np.allclose(y.std(axis=-1), 1.0, atol=1e-3)


def test_layernorm_apply_inference_matches_forward(rng):
    ln = LayerNorm(8)
    ln.gamma.value[:] = rng.standard_normal(8)
    ln.beta.value[:] = rng.standard_normal(8)
    x = rng.standard_normal((5, 8))
    assert np.allclose(ln.forward(x), ln.apply_inference(x))


def test_softmax_rows_sum_to_one(rng):
    x = rng.standard_normal((4, 7)) * 30
    s = softmax(x)
    assert np.allclose(s.sum(axis=-1), 1.0)
    assert (s >= 0).all()


def test_sigmoid_extremes():
    assert sigmoid(np.array([1000.0]))[0] == pytest.approx(1.0)
    assert sigmoid(np.array([-1000.0]))[0] == pytest.approx(0.0)
    assert sigmoid(np.array([0.0]))[0] == pytest.approx(0.5)


def test_one_hot():
    oh = one_hot(np.array([0, 2]), 3)
    assert np.array_equal(oh, np.array([[1.0, 0, 0], [0, 0, 1.0]]))


def test_attention_softmax_rows_are_convex(rng):
    m = MultiHeadSelfAttention(8, 2, rng=0)
    x = rng.standard_normal((2, 5, 8))
    m.forward(x)
    attn = m.last_attn
    assert attn.shape == (2, 2, 5, 5)
    assert np.allclose(attn.sum(axis=-1), 1.0)


def test_attention_permutation_of_batch(rng):
    """Attention must treat batch elements independently."""
    m = MultiHeadSelfAttention(8, 2, rng=0)
    x = rng.standard_normal((3, 4, 8))
    y = m.forward(x)
    y_perm = m.forward(x[[2, 0, 1]])
    assert np.allclose(y[[2, 0, 1]], y_perm)


def test_attention_rejects_bad_config():
    with pytest.raises(ValueError):
        MultiHeadSelfAttention(7, 2)
    with pytest.raises(ValueError):
        MultiHeadSelfAttention(8, 2, score_mode="tanh")


def test_project_qkv_matches_forward_cache(rng):
    m = MultiHeadSelfAttention(8, 2, rng=0)
    x = rng.standard_normal((2, 4, 8))
    m.forward(x)
    q, k, v = m.project_qkv(x)
    assert np.allclose(q, m.last_q)
    assert np.allclose(k, m.last_k)
    assert np.allclose(v, m.last_v)


def test_positional_encoding_shapes_and_determinism():
    pe = PositionalEncoding(8, max_len=16)
    x = np.zeros((2, 10, 8))
    y = pe.forward(x)
    assert y.shape == x.shape
    assert np.allclose(y[0], y[1])  # same positions added to each batch row
    with pytest.raises(ValueError):
        pe.forward(np.zeros((1, 20, 8)))


def test_positional_encoding_distinct_positions():
    pe = PositionalEncoding(16, max_len=32)
    rows = pe.pe[:8]
    dists = np.linalg.norm(rows[None] - rows[:, None], axis=-1)
    assert (dists[np.triu_indices(8, 1)] > 1e-3).all()


def test_meanpool(rng):
    mp = MeanPool()
    x = rng.standard_normal((2, 5, 3))
    assert np.allclose(mp.forward(x), x.mean(axis=1))


def test_encoder_layer_output_is_normalized(rng):
    enc = TransformerEncoderLayer(8, 2, 16, rng=0)
    x = rng.standard_normal((2, 4, 8)) * 100
    y = enc.forward(x)
    # post-LN output: per-token mean ~ beta (zero-init), std ~ gamma (one-init)
    assert np.allclose(y.mean(axis=-1), 0.0, atol=1e-8)
