"""The drift-aware adaptation loop: monitor, controller, adaptive stream."""

import numpy as np
import pytest

from repro.data import PreprocessConfig, build_dataset
from repro.models import AttentionPredictor, ModelConfig
from repro.prefetch import DARTPrefetcher
from repro.runtime import (
    AdaptationConfig,
    Emission,
    ModelArtifact,
    StreamMonitor,
    score_prefetch_lists,
    serve,
)
from repro.tabularization import TableConfig, tabularize_predictor
from repro.traces import phase_shift_trace
from repro.utils.bits import BLOCK_BITS

BLOCK = 1 << BLOCK_BITS


# ------------------------------------------------------------- StreamMonitor
def test_monitor_perfect_predictions_score_one():
    cfg = AdaptationConfig(window=256, lookahead=4, check_every=64,
                           min_samples=8, result_window=64, feature_window=32)
    mon = StreamMonitor(cfg)
    # Access stream of consecutive blocks; every emission predicts the next
    # block — always demanded on the very next access.
    for i in range(200):
        mon.update(0x400, i * BLOCK)
        mon.record([Emission(i, [i + 1])])
    assert mon.accuracy == pytest.approx(1.0)
    assert mon.samples > 0
    assert mon.coverage > 0.9  # warm-up accesses are the only uncovered ones


def test_monitor_wrong_predictions_score_zero():
    cfg = AdaptationConfig(window=256, lookahead=4, check_every=64,
                           min_samples=8, result_window=64, feature_window=32)
    mon = StreamMonitor(cfg)
    for i in range(200):
        mon.update(0x400, i * BLOCK)
        mon.record([Emission(i, [i + 10_000])])  # never demanded
    assert mon.accuracy == 0.0
    assert mon.coverage == 0.0


def test_monitor_lookahead_is_enforced():
    cfg = AdaptationConfig(window=256, lookahead=2, check_every=64,
                           min_samples=1, result_window=64, feature_window=32)
    mon = StreamMonitor(cfg)
    # Predict a block that arrives 5 accesses later — outside lookahead 2.
    for i in range(50):
        mon.update(0x400, i * BLOCK)
        mon.record([Emission(i, [i + 5])])
    assert mon.accuracy == 0.0


def test_monitor_accuracy_drop_declares_drift():
    cfg = AdaptationConfig(window=512, lookahead=4, check_every=64,
                           min_samples=16, result_window=64, acc_drop=0.3,
                           feature_window=512, cooldown=0)
    mon = StreamMonitor(cfg)
    seq = 0
    for _ in range(300):  # good phase: reference accuracy ~1
        mon.update(0x400, seq * BLOCK)
        mon.record([Emission(seq, [seq + 1])])
        seq += 1
    assert mon.check_drift() is None  # sets the reference
    assert mon._ref_acc == pytest.approx(1.0)
    for _ in range(300):  # model goes blind
        mon.update(0x400, seq * BLOCK)
        mon.record([Emission(seq, [seq + 10_000])])
        seq += 1
    assert mon.check_drift() == "accuracy"


def test_monitor_rebase_clears_signals():
    cfg = AdaptationConfig(window=256, lookahead=4, check_every=64,
                           min_samples=8, result_window=64, feature_window=32)
    mon = StreamMonitor(cfg)
    for i in range(100):
        mon.update(0x400, i * BLOCK)
        mon.record([Emission(i, [i + 1])])
    assert mon.samples > 0
    mon.rebase()
    assert mon.samples == 0
    assert mon.accuracy == 0.0
    # cooldown suppresses drift checks right after a swap
    assert mon.check_drift() is None
    # the access window survives a rebase (it is the refit corpus)
    pcs, addrs = mon.recent()
    assert len(addrs) == 100


def test_regression_monitor_by_block_bounded_on_unique_stream():
    """The satisfied-prediction pop must delete its drained deque.

    A never-repeating access stream where every prediction is demanded
    exactly once drains each block's deque via the hit path; before the fix
    the empty shells accumulated in ``_by_block`` forever (one per access).
    """
    cfg = AdaptationConfig(window=256, lookahead=4, check_every=64,
                           min_samples=8, result_window=64, feature_window=32)
    mon = StreamMonitor(cfg)
    n = 5000
    for i in range(n):
        mon.update(0x400, i * BLOCK)  # block i: never repeats
        mon.record([Emission(i, [i + 1])])  # satisfied at access i+1, once
    # Only genuinely outstanding predictions may remain indexed: the leak
    # grew this linearly with the stream (~n entries).
    assert len(mon._by_block) <= cfg.lookahead + 1
    assert mon.accuracy == pytest.approx(1.0)


# ------------------------------------------------------- score_prefetch_lists
def test_score_prefetch_lists_basic():
    blocks = [10, 11, 12, 13, 14]
    lists = [[11], [999], [13, 14], [], []]
    s = score_prefetch_lists(lists, blocks, lookahead=2)
    assert s["issued"] == 4
    assert s["accurate"] == 3  # 11 (next), 13 and 14 (within 2)
    assert s["accuracy"] == pytest.approx(3 / 4)
    assert s["coverage"] == pytest.approx(3 / 5)


def test_score_prefetch_lists_no_lookback():
    # A block demanded *before* the prefetch does not count.
    s = score_prefetch_lists([[], [10]], [10, 11], lookahead=4)
    assert s["accurate"] == 0


def test_score_prefetch_lists_length_mismatch():
    with pytest.raises(ValueError):
        score_prefetch_lists([[1]], [1, 2], lookahead=2)


# ----------------------------------------------------------- adaptive stream
PREPROCESS = PreprocessConfig(history_len=8, window=6, delta_range=32)
MODEL = ModelConfig(layers=1, dim=16, heads=2, history_len=8, bitmap_size=64)


@pytest.fixture(scope="module")
def shift_setup():
    """Student trained on both phases; tables fit on phase A only."""
    from repro.distillation import TrainConfig, train_model

    trace = phase_shift_trace(12_000, shift_at=0.5, seed=2)
    shift = len(trace) // 2
    ds = build_dataset(trace.pcs, trace.addrs, PREPROCESS, max_samples=2000)
    seg = PREPROCESS.segmenter()
    student = AttentionPredictor(MODEL, seg.n_addr_segments, seg.n_pc_segments, rng=0)
    train_model(student, ds, None, TrainConfig(epochs=4, batch_size=128, lr=2e-3, seed=0))
    tr_a = trace.slice(0, shift)
    ds_a = build_dataset(tr_a.pcs, tr_a.addrs, PREPROCESS, max_samples=1200)
    tab, _ = tabularize_predictor(
        student, ds_a.x_addr, ds_a.x_pc, TableConfig.uniform(32, 2),
        fine_tune=True, rng=1,
    )
    artifact = ModelArtifact(tab, version=1, metadata={"fit": "phase-A"})
    dart = DARTPrefetcher(artifact, PREPROCESS, threshold=0.5, max_degree=2,
                          student=student)
    return trace, shift, dart


def _adapt_config():
    return AdaptationConfig(
        window=1024, lookahead=8, check_every=128, min_samples=128,
        result_window=512, acc_drop=0.15, feature_window=512,
        feature_threshold=6.0, refit_samples=1200, seed=5,
    )


def test_adaptive_stream_recovers_after_phase_shift(shift_setup):
    trace, shift, dart = shift_setup
    n = len(trace)
    tail = shift + (n - shift) // 2

    frozen_stream = dart.stream(batch_size=32, max_wait=8)
    _, frozen = serve(frozen_stream, trace, collect=True, measure=False)
    stream = dart.stream(batch_size=32, max_wait=8, adapt=_adapt_config())
    _, lists = serve(stream, trace, collect=True, measure=False)

    blocks = trace.block_addrs
    f_b = score_prefetch_lists(frozen[tail:], blocks[tail:], 8)["accuracy"]
    a_b = score_prefetch_lists(lists[tail:], blocks[tail:], 8)["accuracy"]
    f_a = score_prefetch_lists(frozen[:shift], blocks[:shift], 8)["accuracy"]
    assert stream.adaptations >= 1
    assert stream.model_version >= 2
    loss = f_a - f_b
    assert loss > 0.05, "scenario must show frozen-table degradation"
    assert a_b - f_b >= 0.5 * loss, (
        f"adaptation must recover >= half the loss (frozen {f_b:.3f}, "
        f"adaptive {a_b:.3f}, pre-shift {f_a:.3f})"
    )
    # swap pause bounded by one flush
    assert stream._engine._mb.last_swap_drained <= 32
    summary = stream.adaptation_summary()
    assert summary["events"][-1]["outcome"] == "swapped"
    assert summary["version"] == stream.model_version


def test_adaptive_stream_emission_invariant(shift_setup):
    """Exactly one emission per access, ascending seq, across adaptation."""
    trace, _, dart = shift_setup
    short = trace.slice(4_000, 9_000)  # spans the shift at 6_000
    stream = dart.stream(batch_size=32, max_wait=8, adapt=_adapt_config())
    stream.reset()
    seen = []
    for i in range(len(short)):
        for em in stream.ingest(int(short.pcs[i]), int(short.addrs[i])):
            seen.append(em.seq)
    for em in stream.flush():
        seen.append(em.seq)
    assert seen == sorted(seen)
    assert seen == list(range(len(short)))


def test_adaptive_stream_reset_is_deterministic(shift_setup):
    trace, _, dart = shift_setup
    short = trace.slice(3_000, 8_000)
    stream = dart.stream(batch_size=32, max_wait=8, adapt=_adapt_config())
    _, first = serve(stream, short, collect=True, measure=False)
    adaptations_first = stream.adaptations
    _, second = serve(stream, short, collect=True, measure=False)  # serve() resets
    assert first == second
    assert stream.adaptations == adaptations_first


def test_adaptive_stream_requires_student(tabular_student, preprocess_config):
    tab, _ = tabular_student
    dart = DARTPrefetcher(tab, preprocess_config)  # no student retained
    with pytest.raises(ValueError, match="student"):
        dart.stream(adapt=True)


def test_adaptation_artifact_lineage(shift_setup):
    trace, _, dart = shift_setup
    stream = dart.stream(batch_size=32, max_wait=8, adapt=_adapt_config())
    serve(stream, trace, collect=False, measure=False)
    assert stream.adaptations >= 1
    art = stream.controller.artifact
    assert art.version == 1 + stream.adaptations
    assert art.metadata["parent_version"] == art.version - 1
    assert art.metadata["refit_reason"] in ("accuracy", "features")
    # geometry is preserved across the lineage
    assert art.model_config.bitmap_size == PREPROCESS.bitmap_size


def test_sim_streaming_records_adaptation(shift_setup):
    from repro.sim import SimConfig, simulate

    trace, _, dart = shift_setup
    short = trace.slice(4_000, 9_000)
    r = simulate(short, dart, SimConfig(), streaming=True,
                 stream_kwargs={"batch_size": 32, "max_wait": 8,
                                "adapt": _adapt_config()})
    assert "adaptation" in r.extra
    assert r.extra["adaptation"]["adaptations"] >= 0
    assert "monitor" in r.extra["adaptation"]


def test_nn_stream_adapts(shift_setup):
    """NeuralPrefetcher.stream(adapt=...) runs the nn_refit recipe."""
    from repro.prefetch import NeuralPrefetcher

    trace, _, dart = shift_setup
    pf = NeuralPrefetcher(dart.student, PREPROCESS, "nn", latency_cycles=0,
                          threshold=0.5, max_degree=2)
    cfg = AdaptationConfig(
        window=1024, lookahead=8, check_every=256, min_samples=128,
        result_window=512, acc_drop=0.15, feature_window=512,
        feature_threshold=6.0, refit_samples=600, seed=7,
    )
    stream = pf.stream(batch_size=32, max_wait=8, adapt=cfg)
    short = trace.slice(5_000, 8_500)  # spans the shift
    _, lists = serve(stream, short, collect=True, measure=False)
    assert len(lists) == len(short)
    # the refit trained a *copy*: the original model still serves the
    # frozen engine identically
    frozen = pf.stream(batch_size=32, max_wait=8)
    _, again = serve(frozen, short, collect=True, measure=False)
    ref = NeuralPrefetcher(dart.student, PREPROCESS, "nn", latency_cycles=0,
                           threshold=0.5, max_degree=2).prefetch_lists(short)
    assert again == ref
