"""Algorithm 1: layer-wise conversion, fine-tuning, hierarchy-of-tables model."""

import numpy as np
import pytest

from repro.core.evaluate import cosine_similarity, f1_score
from repro.nn.linear import Linear
from repro.tabularization import (
    TableConfig,
    finetune_linear,
    tabularize_predictor,
)


# ------------------------------------------------------------------ fine-tune
def test_finetune_lstsq_recovers_exact_map(rng):
    """If Y = W X̂ + b exactly, the solver must recover (W, b)."""
    lin = Linear(6, 4, rng=0)  # starting point (wrong weights)
    w_true = rng.standard_normal((4, 6))
    b_true = rng.standard_normal(4)
    x_hat = rng.standard_normal((300, 6))
    y = x_hat @ w_true.T + b_true
    tuned = finetune_linear(lin, x_hat, y, solver="lstsq")
    assert np.allclose(tuned.weight.value, w_true, atol=1e-5)
    assert np.allclose(tuned.bias.value, b_true, atol=1e-5)
    # original layer untouched
    assert not np.allclose(lin.weight.value, w_true)


def test_finetune_reduces_mse_under_noisy_inputs(rng):
    lin = Linear(6, 3, rng=1)
    x = rng.standard_normal((400, 6))
    y = lin.forward(x)
    x_hat = x + 0.3 * rng.standard_normal(x.shape)  # corrupted inputs
    before = float(((lin.forward(x_hat) - y) ** 2).mean())
    tuned = finetune_linear(lin, x_hat, y, solver="lstsq")
    after = float(((tuned.forward(x_hat) - y) ** 2).mean())
    assert after < before


def test_finetune_sgd_approaches_lstsq(rng):
    lin = Linear(5, 3, rng=2)
    x_hat = rng.standard_normal((200, 5))
    y = rng.standard_normal((200, 3))
    exact = finetune_linear(lin, x_hat, y, solver="lstsq")
    sgd = finetune_linear(lin, x_hat, y, solver="sgd", epochs=200, lr=5e-3)
    mse_exact = float(((exact.forward(x_hat) - y) ** 2).mean())
    mse_sgd = float(((sgd.forward(x_hat) - y) ** 2).mean())
    assert mse_sgd < 1.15 * mse_exact + 1e-9


def test_finetune_validation(rng):
    lin = Linear(5, 3, rng=0)
    with pytest.raises(ValueError):
        finetune_linear(lin, np.zeros((10, 5)), np.zeros((9, 3)))
    with pytest.raises(ValueError):
        finetune_linear(lin, np.zeros((10, 5)), np.zeros((10, 3)), solver="newton")


# ------------------------------------------------------------------ converter
def test_tabular_model_f1_close_to_student(trained_student, split_dataset, tabular_student):
    _, ds_val = split_dataset
    tab, _ = tabular_student
    f1_nn = f1_score(ds_val.labels, trained_student.predict_proba(ds_val.x_addr, ds_val.x_pc))
    f1_tab = f1_score(ds_val.labels, tab.predict_proba(ds_val.x_addr, ds_val.x_pc))
    # Paper Table VII: small drop from student to DART is expected.
    assert f1_tab > f1_nn - 0.2


def test_report_checkpoints_present(tabular_student, trained_student):
    _, report = tabular_student
    keys = set(report.cosine)
    assert "embed" in keys and "logits" in keys
    assert any(k.startswith("enc0/") for k in keys)
    assert all(-1.0 <= v <= 1.0 + 1e-9 for v in report.cosine.values())


def test_fine_tuning_improves_cosine(trained_student, split_dataset):
    """Paper Fig. 11: FT raises cosine similarity, especially near the output."""
    ds_train, _ = split_dataset
    cfg = TableConfig.uniform(16, 2)  # small tables so FT has room to help
    _, rep_ft = tabularize_predictor(
        trained_student, ds_train.x_addr, ds_train.x_pc, cfg, fine_tune=True, rng=0
    )
    _, rep_no = tabularize_predictor(
        trained_student, ds_train.x_addr, ds_train.x_pc, cfg, fine_tune=False, rng=0
    )
    assert rep_ft.cosine["logits"] >= rep_no.cosine["logits"] - 1e-6


def test_layer_outputs_match_query(tabular_student, split_dataset):
    tab, _ = tabular_student
    _, ds_val = split_dataset
    xa, xp = ds_val.x_addr[:16], ds_val.x_pc[:16]
    acts = tab.layer_outputs(xa, xp)
    assert np.allclose(acts["logits"], tab.query_logits(xa, xp))


def test_query_probabilities_in_unit_interval(tabular_student, split_dataset):
    tab, _ = tabular_student
    _, ds_val = split_dataset
    probs = tab.query(ds_val.x_addr[:8], ds_val.x_pc[:8])
    assert ((0.0 <= probs) & (probs <= 1.0)).all()


def test_cost_accounting_positive_and_consistent(tabular_student):
    tab, _ = tabular_student
    assert tab.latency_cycles() > 0
    assert tab.storage_bytes() > 0
    assert tab.arithmetic_ops() > 0


def test_tabular_predict_batching(tabular_student, split_dataset):
    tab, _ = tabular_student
    _, ds_val = split_dataset
    xa, xp = ds_val.x_addr[:20], ds_val.x_pc[:20]
    assert np.allclose(
        tab.predict_proba(xa, xp, batch_size=7), tab.predict_proba(xa, xp, batch_size=20)
    )


def test_student_unmodified_by_conversion(trained_student, split_dataset):
    ds_train, ds_val = split_dataset
    before = trained_student.predict_logits(ds_val.x_addr[:8], ds_val.x_pc[:8])
    tabularize_predictor(
        trained_student, ds_train.x_addr, ds_train.x_pc, TableConfig.uniform(8, 2), rng=3
    )
    after = trained_student.predict_logits(ds_val.x_addr[:8], ds_val.x_pc[:8])
    assert np.allclose(before, after)


# ------------------------------------------------------------------ evaluate
def test_cosine_similarity_properties(rng):
    a = rng.standard_normal((5, 4))
    assert cosine_similarity(a, a) == pytest.approx(1.0)
    assert cosine_similarity(a, -a) == pytest.approx(-1.0)
    z = np.zeros((5, 4))
    assert cosine_similarity(z, z) == pytest.approx(1.0)
    assert cosine_similarity(a, z) == pytest.approx(0.0)
    with pytest.raises(ValueError):
        cosine_similarity(a, a[:2])
