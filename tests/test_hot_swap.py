"""Zero-downtime model hot-swap in the serving engines.

The acceptance bar: a *no-op* swap (reinstalling the same tables) mid-stream
must leave per-stream emissions bit-identical to an engine that never
swapped — for the single-stream MicroBatcher and for a MultiStreamEngine at
N >= 4 — and the swap pause must be bounded by one flush.
"""

import numpy as np
import pytest

from repro.runtime import ModelArtifact, serve_interleaved
from repro.runtime.microbatch import resolve_predictor

# `dart` is the shared session fixture in conftest.py.


def _drive_with_swaps(stream, trace, swap_at, target):
    """Serve a trace, swapping at the given access indices; collect lists."""
    n = len(trace)
    lists = [[] for _ in range(n)]
    for i in range(n):
        for em in stream.ingest(int(trace.pcs[i]), int(trace.addrs[i])):
            lists[em.seq] = list(em.blocks)
        if i in swap_at:
            for em in stream.swap_model(target):
                lists[em.seq] = list(em.blocks)
    for em in stream.flush():
        lists[em.seq] = list(em.blocks)
    return lists


def test_noop_swap_bit_identical_microbatcher(dart, small_trace):
    trace = small_trace.slice(0, 1200)
    baseline = dart.prefetch_lists(trace)
    stream = dart.stream(batch_size=16, max_wait=4)
    lists = _drive_with_swaps(stream, trace, {97, 400, 913}, dart.predictor)
    assert lists == baseline
    assert stream.swaps == 3


def test_swap_drain_bounded_by_one_flush(dart, small_trace):
    trace = small_trace.slice(0, 600)
    stream = dart.stream(batch_size=16)  # no deadline: queues fill up
    calls_before = None
    for i in range(len(trace)):
        stream.ingest(int(trace.pcs[i]), int(trace.addrs[i]))
        if i == 450:
            pending = stream.pending
            assert pending > 0
            calls_before = stream.predict_calls
            drained = stream.swap_model(dart.predictor)
            # The entire pause: one predict call answering <= B queries.
            assert len(drained) == pending <= stream.batch_size
            assert stream.predict_calls == calls_before + 1
            assert stream.pending == 0
    assert calls_before is not None


def test_noop_swap_bit_identical_multistream(dart, small_trace):
    n_streams = 4
    shards = [
        small_trace.slice(i * 700, (i + 1) * 700) for i in range(n_streams)
    ]
    solo = [dart.prefetch_lists(s) for s in shards]

    engine = dart.multistream(batch_size=32, max_wait=8)
    handles = engine.streams(n_streams)
    lists = [[[] for _ in range(len(s))] for s in shards]
    for i in range(700):
        for k, handle in enumerate(handles):
            for em in handle.ingest(int(shards[k].pcs[i]), int(shards[k].addrs[i])):
                lists[k][em.seq] = list(em.blocks)
        if i in (103, 350, 598):
            engine.swap_model(dart.predictor)  # answers land in outboxes
    for k, handle in enumerate(handles):
        for em in handle.flush():
            lists[k][em.seq] = list(em.blocks)
        for em in handle.poll():
            lists[k][em.seq] = list(em.blocks)
    assert lists == solo
    assert engine.swaps == 3
    assert engine.stats()["swaps"] == 3


def test_swap_to_different_model_changes_future_only(dart, tabular_student,
                                                     preprocess_config, small_trace):
    tab, _ = tabular_student
    # A different model: same geometry, different decode behaviour — zero
    # tables predict nothing.
    zero = lambda xa, xp, batch_size=64: np.zeros((xa.shape[0], preprocess_config.bitmap_size))
    trace = small_trace.slice(0, 400)
    baseline = dart.prefetch_lists(trace)
    stream = dart.stream(batch_size=8, max_wait=2)
    cut = 200
    lists = _drive_with_swaps(stream, trace, {cut}, zero)
    # everything answered up to the swap matches the old model ...
    changed_from = min(
        (i for i in range(len(trace)) if lists[i] != baseline[i]),
        default=len(trace),
    )
    assert changed_from > cut
    # ... and the tail is all-empty (the zero model's answer).
    assert all(lists[i] == [] for i in range(changed_from, len(trace)))


def test_swap_rejects_geometry_mismatch(dart, preprocess_config, small_trace):
    from repro.data import PreprocessConfig

    stream = dart.stream(batch_size=8)
    trace = small_trace.slice(0, 50)
    for i in range(len(trace)):
        stream.ingest(int(trace.pcs[i]), int(trace.addrs[i]))

    class WrongGeometry:
        class model_config:
            bitmap_size = preprocess_config.bitmap_size * 2
            history_len = preprocess_config.history_len

        def predict_proba(self, *a, **kw):  # pragma: no cover - never reached
            raise AssertionError

    pending_before = stream.pending
    with pytest.raises(ValueError, match="geometry"):
        stream.swap_model(WrongGeometry())
    # refused swap leaves the engine untouched
    assert stream.pending == pending_before


def test_swap_rejects_nn_geometry_mismatch(dart, preprocess_config):
    """NN predictors expose .config (not .model_config) — still validated."""
    from repro.models import AttentionPredictor, ModelConfig

    seg = preprocess_config.segmenter()
    wrong = AttentionPredictor(
        ModelConfig(layers=1, dim=16, heads=2,
                    history_len=preprocess_config.history_len,
                    bitmap_size=preprocess_config.bitmap_size * 2),
        seg.n_addr_segments, seg.n_pc_segments, rng=0,
    )
    stream = dart.stream(batch_size=8)
    with pytest.raises(ValueError, match="geometry"):
        stream.swap_model(wrong)


def test_swap_tracks_artifact_version(dart, tabular_student, preprocess_config):
    tab, _ = tabular_student
    art = ModelArtifact(tab, version=7, metadata={"origin": "test"})
    stream = dart.stream(batch_size=8)
    assert stream.model_version is None  # boot model was a bare callable
    stream.swap_model(art)
    assert stream.model_version == 7
    assert stream.swaps == 1


def test_resolve_predictor_accepts_callable_and_artifact(dart, tabular_student,
                                                         preprocess_config):
    tab, _ = tabular_student
    fn, ver = resolve_predictor(tab.predict_proba, preprocess_config)
    assert ver is None and callable(fn)
    fn, ver = resolve_predictor(ModelArtifact(tab, version=4), preprocess_config)
    assert ver == 4
    probe_a = np.zeros((1, preprocess_config.history_len,
                        preprocess_config.segmenter().n_addr_segments))
    probe_p = np.zeros((1, preprocess_config.history_len,
                        preprocess_config.segmenter().n_pc_segments))
    assert np.allclose(fn(probe_a, probe_p), tab.predict_proba(probe_a, probe_p))


def test_multistream_swap_during_interleaved_serving(dart, small_trace):
    """serve_interleaved after an external swap still satisfies the invariant."""
    n = 4
    shards = [small_trace.slice(i * 500, (i + 1) * 500) for i in range(n)]
    engine = dart.multistream(batch_size=32, max_wait=8)
    handles = engine.streams(n)
    agg, per_stream, lists = serve_interleaved(handles, shards, collect=True)
    solo = [dart.prefetch_lists(s) for s in shards]
    assert lists == solo  # sanity: unswapped run matches
    engine.swap_model(dart.predictor)
    # a second serving round on the same engine (post-swap) still matches
    agg2, _, lists2 = serve_interleaved(handles, shards, collect=True)
    assert lists2 == solo
