"""Replacement policies: per-policy behaviour and shared invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.replacement import (
    BRRIPPolicy,
    DRRIPPolicy,
    FIFOPolicy,
    LFUPolicy,
    LRUPolicy,
    PLRUPolicy,
    RandomPolicy,
    SRRIPPolicy,
    make_policy,
    policy_names,
)


ALL_NAMES = policy_names()


# ------------------------------------------------------------------ factory
def test_make_policy_every_name():
    for name in ALL_NAMES:
        p = make_policy(name, 4, 4)
        assert p.n_sets == 4 and p.n_ways == 4


def test_make_policy_unknown_name():
    with pytest.raises(ValueError, match="unknown replacement policy"):
        make_policy("belady", 4, 4)


def test_policy_validation():
    with pytest.raises(ValueError):
        LRUPolicy(0, 4)
    with pytest.raises(ValueError):
        PLRUPolicy(4, 0)


# --------------------------------------------------------------------- LRU
def test_lru_evicts_least_recent():
    p = LRUPolicy(1, 4)
    for w in range(4):
        p.on_fill(0, w)
    p.on_hit(0, 0)  # 0 becomes MRU; LRU is now way 1
    assert p.victim(0) == 1


def test_lru_hit_refreshes():
    p = LRUPolicy(1, 2)
    p.on_fill(0, 0)
    p.on_fill(0, 1)
    p.on_hit(0, 0)
    assert p.victim(0) == 1


# -------------------------------------------------------------------- FIFO
def test_fifo_ignores_hits():
    p = FIFOPolicy(1, 2)
    p.on_fill(0, 0)
    p.on_fill(0, 1)
    p.on_hit(0, 0)  # must not refresh
    assert p.victim(0) == 0


# ------------------------------------------------------------------ Random
def test_random_is_deterministic_under_seed():
    a = RandomPolicy(1, 8, seed=7)
    b = RandomPolicy(1, 8, seed=7)
    assert [a.victim(0) for _ in range(20)] == [b.victim(0) for _ in range(20)]


def test_random_reset_restores_stream():
    p = RandomPolicy(1, 8, seed=3)
    first = [p.victim(0) for _ in range(10)]
    p.reset()
    assert [p.victim(0) for _ in range(10)] == first


# -------------------------------------------------------------------- PLRU
def test_plru_victim_avoids_just_touched_way():
    p = PLRUPolicy(1, 4)
    for w in range(4):
        p.on_fill(0, w)
    for w in range(4):
        p.on_hit(0, w)
        assert p.victim(0) != w


def test_plru_cycles_through_all_ways():
    """Touching the victim each time must visit every way (true PLRU)."""
    p = PLRUPolicy(1, 8)
    seen = set()
    for _ in range(8):
        v = p.victim(0)
        seen.add(v)
        p.on_fill(0, v)
    assert seen == set(range(8))


@pytest.mark.parametrize("ways", [3, 5, 6, 12])
def test_plru_non_pow2_ways(ways):
    """The padded tree serves any way count — victims stay real and cycle."""
    p = PLRUPolicy(1, ways)
    seen = set()
    for _ in range(2 * ways):
        v = p.victim(0)
        assert 0 <= v < ways
        seen.add(v)
        p.on_fill(0, v)
    assert seen == set(range(ways))
    for w in range(ways):
        p.on_hit(0, w)
        assert p.victim(0) != w or ways == 1


def test_plru_pow2_matches_unpadded_tree():
    """Power-of-two geometries must keep the classic tree bit-for-bit."""
    p = PLRUPolicy(2, 4)
    assert p._tree_ways == 4 and p._bits.shape == (2, 3)


@pytest.mark.parametrize("name", [n for n in ALL_NAMES if n != "random"])
def test_on_invalidate_marks_way_evictable(name):
    """After on_invalidate, the freed way must be the next victim."""
    p = make_policy(name, 2, 4)
    for w in range(4):
        p.on_fill(0, w)
        p.on_hit(0, w)
    p.on_invalidate(0, 1)
    assert p.victim(0) == 1


# --------------------------------------------------------------------- LFU
def test_lfu_evicts_least_frequent():
    p = LFUPolicy(1, 3)
    for w in range(3):
        p.on_fill(0, w)
    p.on_hit(0, 0)
    p.on_hit(0, 0)
    p.on_hit(0, 2)
    assert p.victim(0) == 1


def test_lfu_tie_breaks_by_lru():
    p = LFUPolicy(1, 3)
    for w in range(3):
        p.on_fill(0, w)
    p.on_hit(0, 0)  # ways 1 and 2 tie at count=1; way 1 is older
    assert p.victim(0) == 1


# ------------------------------------------------------------------- SRRIP
def test_srrip_fill_then_hit_promotes():
    p = SRRIPPolicy(1, 2)
    p.on_fill(0, 0)
    p.on_fill(0, 1)
    p.on_hit(0, 0)  # way 0 RRPV -> 0
    assert p.victim(0) == 1


def test_srrip_ages_when_no_distant_line():
    p = SRRIPPolicy(1, 2)
    p.on_fill(0, 0)
    p.on_fill(0, 1)
    p.on_hit(0, 0)
    p.on_hit(0, 1)  # both at RRPV 0; victim() must age until one reaches max
    v = p.victim(0)
    assert v in (0, 1)


def test_srrip_scan_resistance():
    """A burst of fills cannot displace a hot line from victim preference.

    The hot way has RRPV 0 after its hit; fresh fills sit at max-1 and reach
    max first, so the scan evicts itself — the core RRIP property.
    """
    p = SRRIPPolicy(1, 4)
    for w in range(4):
        p.on_fill(0, w)
    p.on_hit(0, 0)  # hot line
    for _ in range(6):
        v = p.victim(0)
        assert v != 0
        p.on_fill(0, v)


# ------------------------------------------------------------------- BRRIP
def test_brrip_mostly_inserts_distant():
    p = BRRIPPolicy(1, 4, throttle=32)
    distant = 0
    for _ in range(64):
        p.reset()
        p._tick = 0
        rr = p._insert_rrpv(0)
        if rr == p.max_rrpv:
            distant += 1
    assert distant >= 32  # overwhelmingly distant insertions


def test_brrip_occasionally_inserts_near():
    p = BRRIPPolicy(1, 4, throttle=8)
    inserts = {p._insert_rrpv(0) for _ in range(32)}
    assert p.max_rrpv in inserts and (p.max_rrpv - 1) in inserts


# ------------------------------------------------------------------- DRRIP
def test_drrip_leader_sets_disjoint():
    p = DRRIPPolicy(64, 4, n_leaders=8)
    assert not (p._leader_s & p._leader_b)
    assert len(p._leader_s) == len(p._leader_b) == 8


def test_drrip_psel_moves_on_leader_misses():
    p = DRRIPPolicy(64, 4, n_leaders=8)
    start = p._psel
    s_leader = next(iter(p._leader_s))
    for _ in range(10):
        p.on_miss(s_leader)
    assert p._psel == start + 10
    b_leader = next(iter(p._leader_b))
    for _ in range(20):
        p.on_miss(b_leader)
    assert p._psel == start - 10


def test_drrip_follower_switches_policy():
    p = DRRIPPolicy(64, 4, n_leaders=8)
    follower = next(s for s in range(64) if s not in p._leader_s and s not in p._leader_b)
    p._psel = 0
    assert p._policy_for(follower) is p._srrip
    p._psel = p._psel_max
    assert p._policy_for(follower) is p._brrip


def test_drrip_shares_rrpv_state():
    p = DRRIPPolicy(16, 4)
    assert p._brrip._rrpv is p._srrip._rrpv
    p.reset()
    assert p._brrip._rrpv is p._srrip._rrpv


# -------------------------------------------------------- shared invariants
@settings(max_examples=25, deadline=None)
@given(
    name=st.sampled_from(ALL_NAMES),
    events=st.lists(
        st.tuples(st.sampled_from(["fill", "hit"]), st.integers(0, 3)),
        max_size=60,
    ),
)
def test_property_victim_always_in_range(name, events):
    p = make_policy(name, 2, 4)
    for kind, way in events:
        if kind == "fill":
            p.on_fill(0, way)
        else:
            p.on_hit(0, way)
    assert 0 <= p.victim(0) < 4
    assert 0 <= p.victim(1) < 4  # untouched set must also be servable


@settings(max_examples=15, deadline=None)
@given(
    name=st.sampled_from([n for n in ALL_NAMES if n != "random"]),
    ways=st.sampled_from([2, 4, 8]),
)
def test_property_reset_restores_initial_victim(name, ways):
    p = make_policy(name, 2, ways)
    before = p.victim(0)
    for w in range(ways):
        p.on_fill(0, w)
        p.on_hit(0, w)
    p.reset()
    assert p.victim(0) == before


def test_lru_policy_matches_dict_lru_reference():
    """LRUPolicy must agree with the ordered-dict LRU used by the fast cache."""
    rng = np.random.default_rng(0)
    ways = 4
    p = LRUPolicy(1, ways)
    ref: dict[int, None] = {}  # way -> None, insertion-ordered = LRU order
    for w in range(ways):
        p.on_fill(0, w)
        ref[w] = None
    for _ in range(200):
        w = int(rng.integers(ways))
        p.on_hit(0, w)
        del ref[w]
        ref[w] = None
        assert p.victim(0) == next(iter(ref))
