"""Cost model (Eqs. 16–23) and the table configurator (Sec. VI-C)."""

import numpy as np
import pytest

from repro.models import ModelConfig, STUDENT_CONFIG, TEACHER_CONFIG
from repro.prefetch import (
    TableConfigurator,
    attention_kernel_latency,
    configure_dart,
    linear_kernel_latency,
    nn_ops,
    nn_storage_bits,
    nn_systolic_latency,
    tabular_model_latency,
    tabular_model_ops,
    tabular_model_storage_bits,
)
from repro.tabularization import TableConfig


DART_MODEL = ModelConfig(layers=1, dim=32, heads=2, history_len=16, bitmap_size=256)
DART_TABLE = TableConfig.uniform(128, 2)


def test_kernel_latencies_formulas():
    assert linear_kernel_latency(128, 2) == 9  # log2(128)+log2(2)+1
    assert attention_kernel_latency(128, 2) == 18
    assert linear_kernel_latency(16, 1) == 5


def test_dart_latency_matches_paper_97_cycles():
    """Table V / VIII: the DART configuration costs 97 cycles."""
    assert tabular_model_latency(DART_MODEL, DART_TABLE) == pytest.approx(97.0)


def test_dart_storage_near_paper_864kb():
    storage_kb = tabular_model_storage_bits(DART_MODEL, DART_TABLE) / 8 / 1024
    # Paper: 864.4 KB; our accounting should land within 5%.
    assert abs(storage_kb - 864.4) / 864.4 < 0.05


def test_dart_ops_order_of_magnitude():
    ops = tabular_model_ops(DART_MODEL, DART_TABLE)
    assert 5_000 < ops < 20_000  # paper: 11.0K


def test_latency_monotone_in_k_and_c():
    for bigger in (TableConfig.uniform(256, 2), TableConfig.uniform(128, 4)):
        assert tabular_model_latency(DART_MODEL, bigger) > tabular_model_latency(
            DART_MODEL, DART_TABLE
        )


def test_storage_monotone_and_superlinear_in_k():
    s128 = tabular_model_storage_bits(DART_MODEL, TableConfig.uniform(128, 2))
    s256 = tabular_model_storage_bits(DART_MODEL, TableConfig.uniform(256, 2))
    s512 = tabular_model_storage_bits(DART_MODEL, TableConfig.uniform(512, 2))
    assert s256 > s128
    # attention tables are K^2: doubling K more than doubles storage growth
    assert (s512 - s256) > (s256 - s128)


def test_teacher_vs_student_vs_dart_hierarchy():
    """Table V's headline: DART << Student << Teacher in latency and ops."""
    teacher = TEACHER_CONFIG.scaled(history_len=16, bitmap_size=256)
    student = STUDENT_CONFIG.scaled(history_len=16, bitmap_size=256)
    lat_t = nn_systolic_latency(teacher)
    lat_s = nn_systolic_latency(student)
    lat_d = tabular_model_latency(DART_MODEL, DART_TABLE)
    assert lat_t > 10 * lat_s > 10 * lat_d
    ops_t, ops_s = nn_ops(teacher), nn_ops(student)
    ops_d = tabular_model_ops(DART_MODEL, DART_TABLE)
    assert ops_t > 50 * ops_s
    assert ops_s > 5 * ops_d
    # paper: 99.99% ops reduction from teacher, >90% from student
    assert 1 - ops_d / ops_t > 0.999
    assert 1 - ops_d / ops_s > 0.90


def test_nn_storage_counts_parameters():
    student = STUDENT_CONFIG.scaled(history_len=16, bitmap_size=256)
    from repro.models import AttentionPredictor

    m = AttentionPredictor(student, addr_dim=5, pc_dim=3, rng=0)
    assert nn_storage_bits(student, 5, 3) == m.num_parameters() * 32


def test_configurator_respects_budgets():
    for tau, s in [(60, 30_000), (100, 1_000_000), (200, 4_000_000)]:
        cand = configure_dart(tau, s)
        assert cand.latency_cycles < tau
        assert cand.storage_bytes < s


def test_configurator_latency_major_greedy():
    """Looser budgets must never produce a lower-latency (smaller) design."""
    lat = [configure_dart(t, 10**9).latency_cycles for t in (60, 100, 200)]
    assert lat[0] <= lat[1] <= lat[2]


def test_configurator_paper_table8_shapes():
    """Table VIII: budget triples map to growing (K, C, D, L)."""
    small = configure_dart(60, 30_000)
    base = configure_dart(100, 1_000_000)
    large = configure_dart(200, 4_000_000)
    assert small.table.k_input <= base.table.k_input <= large.table.k_input
    assert small.storage_bytes < base.storage_bytes < large.storage_bytes
    # paper's latency tiers: 57 / 97 / 191 cycles (ours: 57 / 97 / 181)
    assert small.latency_cycles == 57
    assert base.latency_cycles == 97
    assert large.latency_cycles > 150
    # the middle design must be at least as rich as the paper's (K=128, C=2):
    # two designs tie at 97 cycles; the storage-greedy rule picks K=256, C=1.
    assert base.table.k_input * base.table.c_input >= 128 * 2


def test_configurator_infeasible_raises():
    with pytest.raises(ValueError):
        configure_dart(1.0, 10**9)  # nothing is that fast
    with pytest.raises(ValueError):
        configure_dart(60, 10)  # nothing is that small


def test_configurator_candidates_enumeration():
    tc = TableConfigurator(prototypes=(16, 32), subspaces=(1, 2), dims=(16, 32), heads=(2,), layers=(1,))
    cands = tc.candidates
    assert len(cands) == 2 * 2 * 2  # dims x K x C (one layer count, one head count)
    assert all(c.latency_cycles > 0 and c.storage_bytes > 0 for c in cands)
    assert "latency" in cands[0].summary()


def test_assembled_model_agrees_with_cost_model(tabular_student):
    """The assembled hierarchy and the analytic formulas must agree."""
    tab, _ = tabular_student
    analytic_lat = tabular_model_latency(tab.model_config, tab.table_config)
    assert tab.latency_cycles() == pytest.approx(analytic_lat)
    analytic_storage = tabular_model_storage_bits(tab.model_config, tab.table_config)
    assert tab.storage_bits() == pytest.approx(analytic_storage, rel=0.01)


def test_cost_metrics_enumerate_same_components(tabular_student):
    """latency/storage/ops must all walk the same component set (Eq. 22 bug:
    latency once counted addr_table but omitted pc_table)."""
    import contextlib
    from unittest import mock

    tab, _ = tabular_student
    comps = tab.cost_components()
    names = [n for n, _, _ in comps]
    # Both input tables are enumerated, once each, as distinct objects.
    assert names.count("addr_table") == 1 and names.count("pc_table") == 1
    assert tab.addr_table is not tab.pc_table
    assert len({id(c) for _, c, _ in comps}) == len(comps)
    # LN and sigmoid are present too (storage-only / constant-latency).
    assert "ln_in" in names and "sigmoid" in names and "enc0/ln1" in names

    tables = [(n, c) for n, c, t in comps if t is not None]
    for method, metric in [
        ("latency_cycles", tab.latency_cycles),
        ("storage_bits", tab.storage_bits),
        ("ops", tab.arithmetic_ops),
    ]:
        with contextlib.ExitStack() as stack:
            spies = {
                n: stack.enter_context(
                    mock.patch.object(c, method, wraps=getattr(c, method))
                )
                for n, c in tables
            }
            metric()
            for n, spy in spies.items():
                assert spy.call_count == 1, f"{method} skipped component {n}"


def test_latency_puts_pc_table_on_the_critical_path(tabular_student):
    """Input lookups run in parallel: a slower pc_table must dominate."""
    from unittest import mock

    tab, _ = tabular_student
    base = tab.latency_cycles()
    with mock.patch.object(tab.pc_table, "latency_cycles", return_value=1e6):
        assert tab.latency_cycles() >= 1e6  # was invisible before the fix
    assert tab.latency_cycles() == base  # patch scope ended; accounting intact
