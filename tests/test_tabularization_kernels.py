"""Linear kernel, attention kernel, sigmoid LUT, LayerNorm op (Sec. V)."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.layernorm import LayerNorm
from repro.nn.linear import Linear
from repro.tabularization import (
    LayerNormOp,
    SigmoidLUT,
    TabularAttention,
    TabularLinear,
)


# ------------------------------------------------------------- linear kernel
def _clustered(rng, n, d, k=8, spread=0.1):
    centers = rng.standard_normal((k, d)) * 2
    return centers[rng.integers(0, k, size=n)] + spread * rng.standard_normal((n, d))


def test_tabular_linear_approximates(rng):
    lin = Linear(16, 6, rng=0)
    x = _clustered(rng, 1000, 16)
    tab = TabularLinear.train(lin, x, n_prototypes=64, n_subspaces=4, rng=1)
    exact = lin.forward(x)
    approx = tab.query(x)
    rel = np.abs(approx - exact).mean() / np.abs(exact).mean()
    assert rel < 0.25


def test_tabular_linear_handles_3d_inputs(rng):
    lin = Linear(8, 4, rng=0)
    x3 = _clustered(rng, 600, 8).reshape(30, 20, 8)
    tab = TabularLinear.train(lin, x3, 32, 2, rng=1)
    out = tab.query(x3)
    assert out.shape == (30, 20, 4)
    # flattening must not change results (rows are independent)
    assert np.allclose(out.reshape(-1, 4), tab.query(x3.reshape(-1, 8)))


def test_tabular_linear_bias_is_folded(rng):
    lin = Linear(8, 4, rng=0)
    lin.bias.value[:] = 100.0
    x = _clustered(rng, 500, 8)
    tab = TabularLinear.train(lin, x, 32, 2, rng=1)
    approx = tab.query(x)
    assert abs(approx.mean() - 100.0) < 5.0  # bias applied exactly once


def test_tabular_linear_costs_match_paper_formulas():
    lin = Linear(32, 96, rng=0)
    x = np.random.default_rng(0).standard_normal((500, 32))
    tab = TabularLinear.train(lin, x, 128, 2, rng=1)
    assert tab.latency_cycles() == 7 + 1 + 1  # Eq. 16
    t = 16
    assert tab.storage_bits(t) == t * 2 * 7 + 96 * 128 * 2 * 32  # Eq. 18
    assert tab.ops(t) == t * 2 * 7 + t * 96 * 1  # Eq. 20 (log2(2)=1)


def test_tabular_linear_error_shrinks_with_k(rng):
    lin = Linear(12, 5, rng=0)
    x = _clustered(rng, 800, 12, k=16, spread=0.3)
    exact = lin.forward(x)
    errs = []
    for k in (8, 32, 128):
        tab = TabularLinear.train(lin, x, k, 2, rng=1)
        errs.append(float(np.abs(tab.query(x) - exact).mean()))
    assert errs[0] > errs[1] > errs[2]


# ---------------------------------------------------------- attention kernel
def _qkv_data(rng, n=300, t=8, dk=8):
    # Cluster-structured Q/K/V (realistic activations are clusterable).
    q = _clustered(rng, n * t, dk, k=12, spread=0.2).reshape(n, t, dk)
    k = _clustered(rng, n * t, dk, k=12, spread=0.2).reshape(n, t, dk)
    v = _clustered(rng, n * t, dk, k=12, spread=0.2).reshape(n, t, dk)
    return q, k, v


def _sigmoid_attention_reference(q, k, v):
    dk = q.shape[-1]
    scores = q @ k.transpose(0, 2, 1) / np.sqrt(dk)
    return F.sigmoid(scores) @ v


def test_attention_kernel_approximates_sigmoid_attention(rng):
    q, k, v = _qkv_data(rng)
    kern = TabularAttention.train(q, k, v, n_prototypes=128, n_subspaces_k=2, rng=0)
    approx = kern.query(q, k, v)
    exact = _sigmoid_attention_reference(q, k, v)
    rel = np.abs(approx - exact).mean() / (np.abs(exact).mean() + 1e-12)
    # Double quantization on weakly-clustered synthetic data: coarse but
    # clearly correlated (real activations cluster far better; see converter
    # tests where end-to-end F1 survives).
    assert rel < 0.45


def test_attention_kernel_error_shrinks_with_k(rng):
    q, k, v = _qkv_data(rng)
    exact = _sigmoid_attention_reference(q, k, v)
    errs = []
    for n_proto in (8, 32, 128):
        kern = TabularAttention.train(q, k, v, n_proto, 2, rng=0)
        errs.append(float(np.abs(kern.query(q, k, v) - exact).mean()))
    assert errs[0] > errs[2]
    assert errs[1] > errs[2]


def test_attention_kernel_table_shapes(rng):
    q, k, v = _qkv_data(rng, n=100, t=8, dk=8)
    kern = TabularAttention.train(q, k, v, 16, 2, rng=0)
    assert kern.qk_table.shape == (2, 16, 16)  # (C_k, K, K) — Eq. 12
    assert kern.qkv_table.shape == (2, 16, 16)  # (C_t, K, K) — Eq. 14
    # 2 K^2-depth tables: the paper's "2K^2 instead of K^3" headline
    assert kern.qk_table.size + kern.qkv_table.size == 2 * 2 * 16**2


def test_attention_kernel_rejects_mismatched_query(rng):
    q, k, v = _qkv_data(rng, n=50, t=8, dk=8)
    kern = TabularAttention.train(q, k, v, 16, 2, rng=0)
    with pytest.raises(ValueError):
        kern.query(q[:, :4], k[:, :4], v[:, :4])  # wrong T


def test_attention_kernel_costs_match_paper_formulas(rng):
    q, k, v = _qkv_data(rng, n=50, t=16, dk=16)
    kern = TabularAttention.train(q, k, v, 128, 2, rng=0)
    assert kern.latency_cycles() == 2 * (7 + 1 + 1)  # Eq. 17
    t, dk = 16, 16
    expect_storage = (3 * t + dk) * 2 * 7 + 2 * 128 * 128 * 2 * 32
    assert kern.storage_bits(t) == expect_storage  # Eq. 19
    expect_ops = (3 * t + dk) * 2 * 7 + (t * t + dk * dk) * 1
    assert kern.ops(t) == expect_ops  # Eq. 21


# ------------------------------------------------------------------ LUT & LN
def test_sigmoid_lut_accuracy():
    lut = SigmoidLUT(n_entries=1024)
    assert lut.max_error() < 5e-3
    x = np.array([-100.0, 0.0, 100.0])
    y = lut.query(x)
    assert y[0] < 1e-3 and abs(y[1] - 0.5) < 1e-2 and y[2] > 0.999


def test_sigmoid_lut_resolution_tradeoff():
    coarse = SigmoidLUT(n_entries=32).max_error()
    fine = SigmoidLUT(n_entries=2048).max_error()
    assert fine < coarse


def test_sigmoid_lut_validation():
    with pytest.raises(ValueError):
        SigmoidLUT(n_entries=1)
    with pytest.raises(ValueError):
        SigmoidLUT(x_min=2.0, x_max=1.0)


def test_layernorm_op_matches_nn_layer(rng):
    ln = LayerNorm(8)
    ln.gamma.value[:] = rng.standard_normal(8)
    ln.beta.value[:] = rng.standard_normal(8)
    op = LayerNormOp.from_layer(ln)
    x = rng.standard_normal((10, 8))
    assert np.allclose(op.query(x), ln.forward(x))
    assert op.storage_bits == 2 * 8 * 32
