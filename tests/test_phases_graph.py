"""Phase detection and graph-analytics workload generators."""

import numpy as np
import pytest

from repro.traces import (
    FEATURE_NAMES,
    GRAPH_WORKLOADS,
    detect_phases,
    make_graph_workload,
    phase_summary,
    phase_transition_matrix,
    window_features,
)
from repro.traces.generators import RandomPhase, StreamPhase, compose_trace
from repro.traces.graph_workloads import PC_EDGES, PC_GATHER, PC_OFFSETS


def _two_phase_trace(n=4096):
    """First half pure stream, second half random: trivially two phases."""
    return compose_trace(
        [
            (StreamPhase(0, 10**6, stride_blocks=1), n // 2),
            (RandomPhase(0, 10**7), n // 2),
        ],
        seed=0,
    )


# ---------------------------------------------------------------- features
def test_window_features_shape():
    tr = _two_phase_trace()
    f = window_features(tr, window=256)
    assert f.shape == (len(tr) // 256, len(FEATURE_NAMES))


def test_window_features_validation():
    with pytest.raises(ValueError):
        window_features(_two_phase_trace(512), window=1)


def test_stream_windows_look_streamy():
    tr = _two_phase_trace(4096)
    f = window_features(tr, window=256)
    half = len(f) // 2
    stream_frac = f[:, FEATURE_NAMES.index("stream_frac")]
    entropy = f[:, FEATURE_NAMES.index("delta_entropy")]
    assert stream_frac[:half].mean() > 0.9
    assert stream_frac[half:].mean() < 0.2
    assert entropy[:half].mean() < entropy[half:].mean()


# --------------------------------------------------------------- detection
def test_detect_phases_separates_stream_from_random():
    tr = _two_phase_trace(8192)
    labels = detect_phases(tr, n_phases=2, window=256, seed=0)
    half = len(labels) // 2
    first = np.bincount(labels[:half]).argmax()
    second = np.bincount(labels[half:]).argmax()
    assert first != second
    # each half is dominated by its own phase label
    assert (labels[:half] == first).mean() > 0.9
    assert (labels[half:] == second).mean() > 0.9


def test_detect_phases_empty_and_tiny():
    tiny = _two_phase_trace(512)
    assert len(detect_phases(tiny, n_phases=3, window=1024)) == 0
    labels = detect_phases(tiny, n_phases=8, window=256)  # k clamps to windows
    assert len(labels) == 2


def test_phase_summary_covers_all_windows():
    tr = _two_phase_trace(4096)
    labels = detect_phases(tr, n_phases=2, window=256, seed=0)
    summ = phase_summary(tr, labels, window=256)
    assert sum(s["windows"] for s in summ) == len(labels)
    assert abs(sum(s["fraction"] for s in summ) - 1.0) < 1e-9
    for s in summ:
        for name in FEATURE_NAMES:
            assert name in s


def test_transition_matrix_rows_normalized():
    labels = np.array([0, 0, 1, 1, 0, 2, 2, 2])
    mat = phase_transition_matrix(labels)
    assert mat.shape == (3, 3)
    np.testing.assert_allclose(mat.sum(axis=1), 1.0)


def test_transition_matrix_two_phase_trace_is_blocky():
    tr = _two_phase_trace(8192)
    labels = detect_phases(tr, n_phases=2, window=256, seed=0)
    mat = phase_transition_matrix(labels, 2)
    # phases are long-lived: self-transition dominates
    assert mat[0, 0] > 0.5 and mat[1, 1] > 0.5


# ------------------------------------------------------------------- graph
def test_graph_workload_names():
    with pytest.raises(ValueError):
        make_graph_workload("sssp")
    assert set(GRAPH_WORKLOADS) == {"bfs", "pagerank", "cc"}


@pytest.mark.parametrize("kind", GRAPH_WORKLOADS)
def test_graph_workload_shape_and_streams(kind):
    tr = make_graph_workload(kind, n_vertices=300, avg_degree=4, seed=1)
    assert len(tr) > 300
    pcs = set(np.unique(tr.pcs).tolist())
    assert pcs == {PC_OFFSETS, PC_EDGES, PC_GATHER}
    assert np.all(np.diff(tr.instr_ids) >= 1)


def test_graph_workload_deterministic():
    a = make_graph_workload("bfs", n_vertices=200, seed=7)
    b = make_graph_workload("bfs", n_vertices=200, seed=7)
    np.testing.assert_array_equal(a.addrs, b.addrs)
    c = make_graph_workload("bfs", n_vertices=200, seed=8)
    assert not np.array_equal(a.addrs, c.addrs)


def test_pagerank_iterations_scale_length():
    one = make_graph_workload("pagerank", n_vertices=200, iterations=1, seed=0)
    two = make_graph_workload("pagerank", n_vertices=200, iterations=2, seed=0)
    assert abs(len(two) - 2 * len(one)) < 4


def test_cc_frontier_shrinks():
    tr1 = make_graph_workload("cc", n_vertices=300, iterations=1, seed=0)
    tr3 = make_graph_workload("cc", n_vertices=300, iterations=3, seed=0)
    # later iterations add less than the first (shrinking active set)
    assert len(tr3) < 3 * len(tr1)
    assert len(tr3) > len(tr1)


def test_gather_stream_is_the_irregular_one():
    tr = make_graph_workload("pagerank", n_vertices=500, avg_degree=6, seed=2)
    blocks = tr.block_addrs
    gather = blocks[tr.pcs == PC_GATHER]
    edges = blocks[tr.pcs == PC_EDGES]
    # adjacency runs are locally sequential; gathers jump around
    gather_jump = np.abs(np.diff(gather)).mean()
    edge_jump = np.abs(np.diff(edges)).mean()
    assert gather_jump > 5 * edge_jump


def test_graph_trace_runs_through_simulator_and_prefetchers():
    from repro.prefetch import BestOffsetPrefetcher, ISBPrefetcher
    from repro.sim import ipc_improvement, simulate

    tr = make_graph_workload("bfs", n_vertices=400, avg_degree=6, seed=3)
    base = simulate(tr, None)
    bo = simulate(tr, BestOffsetPrefetcher())
    isb = simulate(tr, ISBPrefetcher())
    assert base.ipc > 0
    # the offsets/edges streams give spatial prefetchers something to catch
    assert ipc_improvement(bo, base) > -0.05
    assert 0.0 <= isb.accuracy <= 1.0


def test_detect_phases_is_deterministic_without_scipy():
    """The in-repo k-means keeps phase detection seeded/deterministic."""
    import inspect

    import repro.traces.phases as phases_mod

    assert "scipy" not in inspect.getsource(phases_mod)
    tr = _two_phase_trace(4096)
    l1 = detect_phases(tr, n_phases=2, window=256, seed=7)
    l2 = detect_phases(tr, n_phases=2, window=256, seed=7)
    assert np.array_equal(l1, l2)


def test_phase_shift_trace_two_detectable_phases():
    from repro.traces import phase_shift_trace

    tr = phase_shift_trace(8192, shift_at=0.5, seed=1)
    assert len(tr) == 8192
    labels = detect_phases(tr, n_phases=2, window=256, seed=0)
    half = len(labels) // 2
    first = np.bincount(labels[:half]).argmax()
    second = np.bincount(labels[half:]).argmax()
    assert first != second
    assert (labels[:half] == first).mean() > 0.9
    assert (labels[half:] == second).mean() > 0.9


def test_phase_shift_trace_validation():
    from repro.traces import phase_shift_trace

    with pytest.raises(ValueError):
        phase_shift_trace(1000, shift_at=0.0)
    with pytest.raises(ValueError):
        phase_shift_trace(1000, shift_at=1.5)
