"""Streaming runtime: protocol, adapters, micro-batching, serving engine.

The load-bearing property is **batch/stream equivalence**: for any predictor,
``BatchAdapter(p.stream()).prefetch_lists(trace)`` must equal
``p.prefetch_lists(trace)`` bit for bit — across rule-based state machines,
the micro-batched learned path (all batch sizes), ensembles and filters.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.prefetch import (
    BestOffsetPrefetcher,
    CompositePrefetcher,
    DARTPrefetcher,
    FilteredPrefetcher,
    GHBPrefetcher,
    ISBPrefetcher,
    MarkovPrefetcher,
    NextLinePrefetcher,
    Prefetcher,
    SMSPrefetcher,
    SPPPrefetcher,
    StreamPrefetcher,
    StridePrefetcher,
)
from repro.runtime import (
    BatchAdapter,
    Emission,
    MicroBatcher,
    StreamingModelPrefetcher,
    StreamingPrefetcher,
    as_streaming,
    serve,
)
from repro.sim import SimConfig, simulate
from repro.traces import MemoryTrace

RULE_BASED = [
    BestOffsetPrefetcher,
    SPPPrefetcher,
    ISBPrefetcher,
    SMSPrefetcher,
    lambda: GHBPrefetcher("global"),
    lambda: GHBPrefetcher("pc"),
    StreamPrefetcher,
    StridePrefetcher,
    lambda: NextLinePrefetcher(degree=2),
    MarkovPrefetcher,
]


def _ids(factories):
    return [f().name for f in factories]


# ---------------------------------------------------------------- rule-based
@pytest.mark.parametrize("factory", RULE_BASED, ids=_ids(RULE_BASED))
def test_rule_based_stream_matches_batch(small_trace, factory):
    pf = factory()
    assert BatchAdapter(pf.stream()).prefetch_lists(small_trace) == pf.prefetch_lists(small_trace)


def test_composite_and_filtered_stream_match_batch(small_trace):
    for pf in (
        CompositePrefetcher([StreamPrefetcher(), BestOffsetPrefetcher()], max_degree=3),
        FilteredPrefetcher(BestOffsetPrefetcher(degree=2), window=64),
        FilteredPrefetcher(CompositePrefetcher([NextLinePrefetcher(2), SPPPrefetcher()])),
    ):
        assert (
            BatchAdapter(pf.stream()).prefetch_lists(small_trace)
            == pf.prefetch_lists(small_trace)
        )


def test_stream_carries_cost_metadata():
    pf = BestOffsetPrefetcher()
    s = pf.stream()
    assert (s.name, s.latency_cycles, s.storage_bytes) == (
        pf.name,
        pf.latency_cycles,
        pf.storage_bytes,
    )


def test_base_prefetcher_has_no_stream():
    with pytest.raises(TypeError):
        Prefetcher().stream()


@settings(max_examples=20, deadline=None)
@given(
    data=st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 2_000)), min_size=1, max_size=120
    ),
    which=st.sampled_from(["bo", "spp", "streamer", "markov", "stride"]),
)
def test_streaming_equivalence_property(data, which):
    """Equivalence holds on arbitrary short (pc, block) sequences."""
    factory = {
        "bo": BestOffsetPrefetcher,
        "spp": SPPPrefetcher,
        "streamer": StreamPrefetcher,
        "markov": MarkovPrefetcher,
        "stride": StridePrefetcher,
    }[which]
    pcs = np.asarray([p for p, _ in data], dtype=np.int64)
    addrs = np.asarray([a << 6 for _, a in data], dtype=np.int64)  # block-aligned
    trace = MemoryTrace(np.arange(len(data), dtype=np.int64), pcs, addrs)
    pf = factory()
    assert BatchAdapter(pf.stream()).prefetch_lists(trace) == pf.prefetch_lists(trace)


# ------------------------------------------------------------- learned (DART)
@pytest.fixture(scope="module")
def dart(tabular_student, preprocess_config):
    tab, _ = tabular_student
    return DARTPrefetcher(tab, preprocess_config, threshold=0.4, max_degree=3)


@pytest.mark.parametrize("batch_size", [1, 5, 64, 512])
def test_dart_stream_matches_batch_across_batch_sizes(small_trace, dart, batch_size):
    trace = small_trace.slice(0, 1200)
    expected = dart.prefetch_lists(trace)
    got = BatchAdapter(dart.stream(batch_size=batch_size)).prefetch_lists(trace)
    assert got == expected
    assert any(got)  # the model actually prefetches on this trace


@pytest.mark.parametrize("decode", ["distance", "confidence"])
@pytest.mark.parametrize("max_degree", [1, 4])
def test_dart_stream_equivalence_across_decode_policies(
    small_trace, tabular_student, preprocess_config, decode, max_degree
):
    tab, _ = tabular_student
    pf = DARTPrefetcher(
        tab, preprocess_config, threshold=0.4, max_degree=max_degree, decode=decode
    )
    trace = small_trace.slice(0, 800)
    assert (
        BatchAdapter(pf.stream(batch_size=32)).prefetch_lists(trace)
        == pf.prefetch_lists(trace)
    )


def test_max_wait_deadline_semantics(dart):
    """max_wait=N flushes when the oldest query has N accesses behind it."""
    stream = dart.stream(batch_size=512, max_wait=2)
    t = dart.config.history_len
    # Warm up history, then watch the deadline: queries queue at ages 0, 1
    # and flush when the oldest hits age 2 — bursts of 3.
    flush_sizes = []
    for i in range(t - 1 + 9):
        ems = stream.ingest(7, (1000 + i) << 6)
        real = [e for e in ems if e.seq >= t - 1]
        if real:
            flush_sizes.append(len(real))
    assert flush_sizes == [3, 3, 3]


def test_latency_sketch_bounds_memory():
    from repro.runtime.engine import _LatencySketch

    sketch = _LatencySketch(cap=64)
    for i in range(10_000):
        sketch.add(float(i))
    assert len(sketch.samples) < 64
    assert sketch.count == 10_000
    assert sketch.peak == 9999.0
    assert sketch.mean == pytest.approx(4999.5)


def test_dart_stream_max_wait_bounds_pending(small_trace, dart):
    stream = dart.stream(batch_size=512, max_wait=16)
    pcs, addrs = small_trace.pcs, small_trace.addrs
    for i in range(400):
        stream.ingest(int(pcs[i]), int(addrs[i]))
        assert stream.pending <= 16
    # And the deadline path still reproduces the batch output.
    trace = small_trace.slice(0, 600)
    assert BatchAdapter(dart.stream(batch_size=512, max_wait=16)).prefetch_lists(
        trace
    ) == dart.prefetch_lists(trace)


def test_dart_stream_reuses_prediction_buffers(small_trace, dart):
    """Steady-state serving issues exactly one predict call per flush."""
    calls = []
    inner = dart.predictor.predict_proba

    def counting(x_addr, x_pc, batch_size=512, out=None):
        calls.append(x_addr.shape[0])
        return inner(x_addr, x_pc, batch_size=batch_size, out=out)

    stream = StreamingModelPrefetcher(
        counting, dart.config, threshold=dart.threshold,
        max_degree=dart.max_degree, batch_size=32,
    )
    pcs, addrs = small_trace.pcs, small_trace.addrs
    for i in range(200):
        stream.ingest(int(pcs[i]), int(addrs[i]))
    stream.flush()
    t = dart.config.history_len
    assert sum(calls) == 200 - (t - 1)  # every access with history queried once
    assert all(c <= 32 for c in calls)


# ----------------------------------------------------------- protocol details
def test_emission_invariant_one_per_access(small_trace, dart):
    """Exactly one emission per access, in ascending seq order."""
    for stream in (BestOffsetPrefetcher().stream(), dart.stream(batch_size=17)):
        seqs = []
        pcs, addrs = small_trace.pcs, small_trace.addrs
        n = 300
        for i in range(n):
            seqs.extend(em.seq for em in stream.ingest(int(pcs[i]), int(addrs[i])))
        seqs.extend(em.seq for em in stream.flush())
        assert seqs == list(range(n))


def test_observe_flattens_emissions():
    stream = NextLinePrefetcher(degree=2).stream()
    assert stream.observe(7, 0x1000) == [0x41, 0x42]


def test_stream_reset_restarts_cleanly(small_trace, dart):
    stream = dart.stream(batch_size=16)
    first = BatchAdapter(stream).prefetch_lists(small_trace.slice(0, 300))
    # BatchAdapter resets on entry, so a second run over the same data matches.
    second = BatchAdapter(stream).prefetch_lists(small_trace.slice(0, 300))
    assert first == second


def test_microbatcher_reset_is_bit_identical_to_fresh(small_trace, dart):
    """reset() must clear the feature rings/anchors, not just seq/pending:
    a serve-reset-serve run must match a fresh engine bit for bit."""
    kwargs = dict(threshold=dart.threshold, max_degree=dart.max_degree, batch_size=16)
    mb = MicroBatcher(dart.predictor.predict_proba, dart.config, **kwargs)
    pcs, addrs = small_trace.pcs, small_trace.addrs
    for i in range(137):  # odd count: leaves queries pending and rings dirty
        mb.push(int(pcs[i]), int(addrs[i]))
    assert mb._pending
    mb.reset()
    assert mb.seq == 0 and not mb._pending
    state = mb._state
    assert not state.addr_ring.any() and not state.pc_ring.any()
    assert not state.anchors.any()

    def run(engine):
        out = []
        for i in range(300):
            out.extend(engine.push(int(pcs[i]), int(addrs[i])))
        out.extend(engine.flush())
        return out

    fresh = MicroBatcher(dart.predictor.predict_proba, dart.config, **kwargs)
    assert run(mb) == run(fresh)


def test_serve_times_the_final_drain():
    """The end-of-stream flush (the tail predict answering up to B-1 queries)
    must appear in the latency sketch, not vanish untimed."""
    import time as _time

    class SlowDrain(StreamingPrefetcher):
        name = "slow-drain"

        def __init__(self):
            self.seq = 0

        def ingest(self, pc, addr):
            self.seq += 1
            return []

        def flush(self):
            _time.sleep(0.02)  # stand-in for the deferred tail predict
            return [Emission(s, []) for s in range(self.seq)]

    stats, lists = serve(SlowDrain(), [(0, i << 6) for i in range(50)], collect=True)
    assert lists == [[] for _ in range(50)]
    assert stats.max_us >= 10_000  # the 20 ms drain is in the sketch


def test_microbatcher_rejects_bad_config(dart):
    with pytest.raises(ValueError):
        MicroBatcher(dart.predictor.predict_proba, dart.config, batch_size=0)
    with pytest.raises(ValueError):
        MicroBatcher(dart.predictor.predict_proba, dart.config, max_wait=0)


def test_scalar_segmentation_bit_identical(preprocess_config):
    """The streaming hot path segments exactly like the batch vectorized path."""
    seg = preprocess_config.segmenter()
    rng = np.random.default_rng(0)
    blocks = rng.integers(0, 1 << 30, size=50, dtype=np.int64)
    pcs = rng.integers(0, 1 << 20, size=50, dtype=np.int64)
    batch_a = seg.segment_block_addresses(blocks)
    batch_p = seg.segment_pcs(pcs)
    out_a = np.empty(seg.n_addr_segments)
    out_p = np.empty(seg.n_pc_segments)
    for i in range(50):
        seg.segment_access_into(int(blocks[i]), int(pcs[i]), out_a, out_p)
        assert np.array_equal(out_a, batch_a[i])
        assert np.array_equal(out_p, batch_p[i])


# -------------------------------------------------------------------- serving
def test_serve_reports_stats_and_lists(small_trace):
    pf = BestOffsetPrefetcher()
    stats, lists = serve(pf.stream(), small_trace, collect=True)
    assert stats.accesses == len(small_trace)
    assert lists == pf.prefetch_lists(small_trace)
    assert stats.prefetches == sum(len(r) for r in lists)
    assert stats.throughput > 0
    assert stats.p50_us <= stats.p99_us <= stats.max_us
    d = stats.to_dict()
    assert d["accesses"] == stats.accesses and "p99_us" in d


def test_serve_accepts_chunked_sources(small_trace):
    chunks = [small_trace.slice(0, 500), small_trace.slice(500, len(small_trace))]
    stats, lists = serve(NextLinePrefetcher().stream(), chunks, collect=True)
    assert stats.accesses == len(small_trace)
    assert lists == NextLinePrefetcher().prefetch_lists(small_trace)


def test_as_streaming_passthrough():
    s = BestOffsetPrefetcher().stream()
    assert as_streaming(s) is s
    assert isinstance(as_streaming(BestOffsetPrefetcher()), StreamingPrefetcher)


def test_batch_adapter_round_trips_to_stream():
    s = BestOffsetPrefetcher().stream()
    adapter = BatchAdapter(s)
    assert as_streaming(adapter) is s  # adapter.stream() returns the wrapped stream


# ------------------------------------------------------------------ simulator
def test_simulator_streaming_mode_matches_batch_for_sync_streams(small_trace):
    cfg = SimConfig()
    for pf in (BestOffsetPrefetcher(), SPPPrefetcher()):
        a = simulate(small_trace, pf, cfg)
        b = simulate(small_trace, pf, cfg, streaming=True)
        assert (a.cycles, a.demand_hits, a.demand_misses) == (
            b.cycles,
            b.demand_hits,
            b.demand_misses,
        )
        assert (a.prefetches_issued, a.prefetches_useful) == (
            b.prefetches_issued,
            b.prefetches_useful,
        )


def test_simulator_streaming_mode_with_dart(small_trace, dart):
    trace = small_trace.slice(0, 1500)
    r = simulate(trace, dart, SimConfig(), streaming=True, stream_kwargs={"batch_size": 32})
    assert r.demand_accesses == len(trace)
    assert r.prefetches_issued > 0
    # Micro-batching defers emissions, so issue volume cannot exceed batch mode.
    batch = simulate(trace, dart, SimConfig())
    assert r.prefetches_issued <= batch.prefetches_issued


def test_emission_namedtuple_shape():
    em = Emission(3, [1, 2])
    assert em.seq == 3 and em.blocks == [1, 2]
