"""Residual PQ and table bit-width quantization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantization import (
    ProductQuantizer,
    ResidualProductQuantizer,
    apply_bitwidth,
    dequantize_array,
    fake_quantize,
    quantization_snr_db,
    quantize_array,
)


def _data(n=600, d=16, seed=0):
    rng = np.random.default_rng(seed)
    # Correlated, multi-modal data: what layer activations look like.
    centers = rng.standard_normal((8, d)) * 3
    x = centers[rng.integers(0, 8, size=n)] + rng.standard_normal((n, d)) * 0.5
    return x


# ------------------------------------------------------------- residual PQ
def test_residual_pq_error_decreases_with_stages():
    x = _data()
    errs = []
    for m in (1, 2, 3):
        rpq = ResidualProductQuantizer(16, 4, 16, n_stages=m, rng=0).fit(x)
        errs.append(rpq.quantization_error(x))
    assert errs[0] > errs[1] > errs[2]
    assert errs[2] < 0.5 * errs[0]


def test_residual_pq_single_stage_matches_plain_pq():
    x = _data(seed=1)
    rpq = ResidualProductQuantizer(16, 4, 8, n_stages=1, rng=5).fit(x)
    pq = ProductQuantizer(16, 4, 8, rng=5).fit(x)
    assert rpq.quantization_error(x) == pytest.approx(pq.quantization_error(x), rel=0.2)


def test_residual_pq_codes_shape_and_roundtrip():
    x = _data(n=100)
    rpq = ResidualProductQuantizer(16, 4, 8, n_stages=2, rng=0).fit(x)
    codes = rpq.encode(x)
    assert codes.shape == (100, 2, 4)
    recon = rpq.reconstruct(codes)
    assert recon.shape == (100, 16)
    with pytest.raises(ValueError):
        rpq.reconstruct(codes[:, :1])


def test_residual_pq_validation():
    with pytest.raises(ValueError):
        ResidualProductQuantizer(16, 4, 8, n_stages=0)


def test_residual_pq_cost_models():
    rpq = ResidualProductQuantizer(16, 4, 16, n_stages=2, rng=0)
    assert rpq.storage_bits(32, d_out=8) == 2 * 4 * 16 * 8 * 32
    single = ResidualProductQuantizer(16, 4, 16, n_stages=1, rng=0)
    assert rpq.latency_cycles() > single.latency_cycles()


def test_residual_pq_beats_bigger_k_at_same_storage():
    """2 stages x K=16 (32 rows of table) vs 1 stage x K=32: residual wins on
    hard (full-rank Gaussian) data where prototype count saturates."""
    rng = np.random.default_rng(7)
    x = rng.standard_normal((800, 16))
    two_stage = ResidualProductQuantizer(16, 2, 16, n_stages=2, rng=0).fit(x)
    one_stage = ProductQuantizer(16, 2, 32, rng=0).fit(x)
    assert two_stage.quantization_error(x) < one_stage.quantization_error(x)


# ---------------------------------------------------------------- bitwidth
def test_quantize_roundtrip_error_bounded_by_half_step():
    rng = np.random.default_rng(0)
    x = rng.standard_normal((50, 20)) * 4
    q, scale = quantize_array(x, bits=8)
    back = dequantize_array(q, scale)
    step = float(np.max(scale))
    assert np.abs(x - back).max() <= step / 2 + 1e-12


def test_quantize_dtype_selection():
    x = np.linspace(-1, 1, 10)
    assert quantize_array(x, 8)[0].dtype == np.int8
    assert quantize_array(x, 16)[0].dtype == np.int16
    assert quantize_array(x, 32)[0].dtype == np.int32


def test_quantize_per_channel_beats_global_on_skewed_scales():
    rng = np.random.default_rng(1)
    x = rng.standard_normal((100, 4))
    x[:, 0] *= 1000.0  # one huge channel would eat the global scale
    glob = np.abs(x - fake_quantize(x, 8)).mean()
    per = np.abs(x - fake_quantize(x, 8, axis=1)).mean()
    assert per < glob


def test_quantize_zero_array():
    q, scale = quantize_array(np.zeros((3, 3)), 8)
    assert np.all(q == 0)
    np.testing.assert_allclose(dequantize_array(q, scale), 0.0)


def test_quantize_validation():
    with pytest.raises(ValueError):
        quantize_array(np.ones(3), bits=1)
    with pytest.raises(ValueError):
        quantize_array(np.ones(3), bits=64)


def test_snr_increases_with_bits():
    rng = np.random.default_rng(2)
    x = rng.standard_normal(2000)
    snrs = [quantization_snr_db(x, b) for b in (4, 8, 16)]
    assert snrs[0] < snrs[1] < snrs[2]
    # ~6 dB/bit rule of thumb (loose bounds: signal is not full-scale)
    assert snrs[1] - snrs[0] > 15.0


@settings(max_examples=20, deadline=None)
@given(bits=st.integers(2, 16), seed=st.integers(0, 100))
def test_property_fake_quantize_idempotent(bits, seed):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(40)
    once = fake_quantize(x, bits)
    twice = fake_quantize(once, bits)
    np.testing.assert_allclose(once, twice, atol=1e-12)


# ----------------------------------------------- apply to a tabular model
def test_apply_bitwidth_to_tabular_model(tabular_student, split_dataset):
    from repro.core.evaluate import f1_score

    model, _ = tabular_student
    _, ds_val = split_dataset
    # Work on fresh copies of the tables so the session fixture stays intact.
    import copy

    m32 = copy.deepcopy(model)
    base_probs = m32.predict_proba(ds_val.x_addr, ds_val.x_pc)
    base_storage = m32.storage_bytes()

    m8 = apply_bitwidth(copy.deepcopy(model), 8)
    assert m8.table_config.data_bits == 8
    assert m8.storage_bytes() < base_storage
    probs8 = m8.predict_proba(ds_val.x_addr, ds_val.x_pc)
    f1_base = f1_score(ds_val.labels, base_probs)
    f1_q8 = f1_score(ds_val.labels, probs8)
    assert f1_q8 > 0.5 * f1_base  # 8-bit tables keep most of the F1

    m2 = apply_bitwidth(copy.deepcopy(model), 2)
    probs2 = m2.predict_proba(ds_val.x_addr, ds_val.x_pc)
    # 2-bit entries must visibly distort outputs (sanity that the knob bites)
    assert np.abs(probs2 - base_probs).mean() > np.abs(probs8 - base_probs).mean()
