"""Paging/TLB substrate and the Belady OPT analysis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.cache import SetAssocCache
from repro.sim.optimal import next_use_indices, opt_miss_count, opt_miss_rate, replacement_headroom
from repro.sim.paging import TLB, PageTable
from repro.traces.trace import MemoryTrace
from repro.utils.bits import PAGE_BITS


# -------------------------------------------------------------- page table
def test_page_table_first_touch_stable():
    pt = PageTable(seed=0)
    f = pt.frame(42)
    assert pt.frame(42) == f
    assert pt.pages_touched == 1


def test_page_table_distinct_pages_distinct_frames():
    pt = PageTable(seed=0)
    frames = [pt.frame(p) for p in range(500)]
    assert len(set(frames)) == 500


def test_page_table_seeded_determinism():
    a = PageTable(seed=5)
    b = PageTable(seed=5)
    assert [a.frame(p) for p in range(50)] == [b.frame(p) for p in range(50)]
    c = PageTable(seed=6)
    assert [c.frame(p) for p in range(50)] != [a.frame(p) for p in range(50)]


def test_contiguous_mode_is_identity_order():
    pt = PageTable(contiguous=True)
    assert [pt.frame(p) for p in [9, 3, 7]] == [0, 1, 2]


def test_translate_preserves_offset():
    pt = PageTable(seed=0)
    vaddr = (123 << PAGE_BITS) | 0x5A7
    paddr = pt.translate(vaddr)
    assert paddr % (1 << PAGE_BITS) == 0x5A7
    assert pt.translate(vaddr) == paddr


def test_translate_blocks_consistent_with_translate():
    pt = PageTable(seed=1)
    blocks = np.array([0, 1, 64, 65, 200], dtype=np.int64)
    out = pt.translate_blocks(blocks)
    pt2 = PageTable(seed=1)
    expect = [pt2.translate(int(b) << 6) >> 6 for b in blocks]
    assert out.tolist() == expect


def test_page_table_wraps_when_exhausted():
    pt = PageTable(n_frames=4, seed=0)
    for p in range(6):  # more pages than frames: must not raise
        pt.frame(p)


def test_page_table_validation():
    with pytest.raises(ValueError):
        PageTable(n_frames=0)


# --------------------------------------------------------------------- TLB
def test_tlb_hit_after_miss():
    tlb = TLB(entries=4, walk_latency=100.0)
    assert tlb.access(1) == 100.0
    assert tlb.access(1) == 0.0
    assert tlb.hits == 1 and tlb.misses == 1


def test_tlb_lru_eviction():
    tlb = TLB(entries=2)
    tlb.access(1)
    tlb.access(2)
    tlb.access(1)  # refresh 1; LRU is 2
    tlb.access(3)  # evicts 2
    assert tlb.access(1) == 0.0  # still resident
    assert tlb.access(2) > 0  # was evicted: miss


def test_tlb_hit_rate_and_reset():
    tlb = TLB(entries=8)
    for p in [1, 1, 1, 2]:
        tlb.access(p)
    assert tlb.hit_rate == 0.5
    tlb.reset()
    assert tlb.hits == 0 and tlb.misses == 0 and tlb.access(1) > 0


def test_tlb_validation():
    with pytest.raises(ValueError):
        TLB(entries=0)


# ------------------------------------------------------------------ Belady
def test_next_use_indices_small():
    out = next_use_indices(np.array([7, 8, 7, 9, 8]))
    assert out.tolist() == [2, 4, 5, 5, 5]


@settings(max_examples=30, deadline=None)
@given(blocks=st.lists(st.integers(0, 9), min_size=1, max_size=60))
def test_property_next_use_matches_bruteforce(blocks):
    arr = np.array(blocks, dtype=np.int64)
    out = next_use_indices(arr)
    n = len(arr)
    for i in range(n):
        expect = next((j for j in range(i + 1, n) if arr[j] == arr[i]), n)
        assert out[i] == expect


def _lru_misses(blocks, n_sets, n_ways):
    c = SetAssocCache(n_sets, n_ways)
    misses = 0
    for b in blocks:
        b = int(b)
        if c.lookup(b) is None:
            misses += 1
            c.insert(b, 0.0, False)
    return misses


@settings(max_examples=25, deadline=None)
@given(blocks=st.lists(st.integers(0, 63), min_size=1, max_size=300))
def test_property_opt_never_worse_than_lru(blocks):
    arr = np.array(blocks, dtype=np.int64)
    assert opt_miss_count(arr, 2, 2) <= _lru_misses(arr, 2, 2)


def test_opt_exact_on_classic_example():
    # Fully associative (1 set, 2 ways): 1 2 3 1 2 -> MIN bypasses 3 (its
    # next use is farthest: never) and keeps {1, 2}: 3 compulsory misses.
    blocks = np.array([1, 2, 3, 1, 2])
    assert opt_miss_count(blocks, 1, 2) == 3
    assert _lru_misses(blocks, 1, 2) == 5  # LRU thrashes


def test_opt_compulsory_misses_only_when_cache_big():
    blocks = np.array([1, 2, 3, 1, 2, 3, 1])
    assert opt_miss_count(blocks, 1, 8) == 3  # unique blocks


def test_opt_validation():
    with pytest.raises(ValueError):
        opt_miss_count(np.array([1]), 3, 2)


def test_opt_miss_rate_and_headroom():
    n = 600
    blocks = np.arange(n) % 96  # cyclic working set
    tr = MemoryTrace(
        np.arange(1, n + 1) * 10,
        np.zeros(n, dtype=np.int64),
        blocks.astype(np.int64) << 6,
    )
    cap = 1 * 64 * 64  # 64 blocks: smaller than the 96-block working set
    rate = opt_miss_rate(tr, cap, n_ways=64)
    assert 0 < rate < 1
    lru = _lru_misses(tr.block_addrs, 1, 64)
    h = replacement_headroom(tr, lru, cap, n_ways=64)
    assert h["opt_misses"] <= h["lru_misses"]
    assert 0.0 <= h["headroom"] <= 1.0
    assert h["headroom"] > 0  # cyclic reuse is LRU's worst case


def test_headroom_zero_when_no_lru_misses():
    tr = MemoryTrace(np.array([10]), np.array([0]), np.array([0]))
    assert replacement_headroom(tr, 0, 4096 * 64)["headroom"] == 0.0
