"""Address bit-manipulation invariants."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.bits import (
    BLOCK_BITS,
    PAGE_BITS,
    block_address,
    block_delta,
    block_offset_in_page,
    make_address,
    num_segments,
    page_address,
    segment_value,
)


def test_block_and_page_relationship():
    addr = make_address(page=5, block_in_page=3, byte_offset=17)
    assert page_address(addr) == 5
    assert block_offset_in_page(addr) == 3
    assert block_address(addr) == (5 << (PAGE_BITS - BLOCK_BITS)) | 3


def test_vectorized_helpers_match_scalars():
    addrs = np.array([0, 64, 4096, 4096 + 64, 1 << 30], dtype=np.int64)
    assert np.array_equal(block_address(addrs), addrs >> BLOCK_BITS)
    assert np.array_equal(page_address(addrs), addrs >> PAGE_BITS)


def test_block_delta_signs():
    ba = np.array([10, 12, 11, 11, 20], dtype=np.int64)
    assert block_delta(ba).tolist() == [2, -1, 0, 9]


@given(
    page=st.integers(min_value=0, max_value=2**40 - 1),
    block=st.integers(min_value=0, max_value=(1 << (PAGE_BITS - BLOCK_BITS)) - 1),
    off=st.integers(min_value=0, max_value=(1 << BLOCK_BITS) - 1),
)
def test_make_address_roundtrip(page, block, off):
    addr = make_address(page, block, off)
    assert page_address(addr) == page
    assert block_offset_in_page(addr) == block
    assert addr & ((1 << BLOCK_BITS) - 1) == off


@given(value=st.integers(min_value=0, max_value=2**50 - 1))
def test_segments_reassemble(value):
    seg_bits = 6
    n = num_segments(50, seg_bits)
    rebuilt = 0
    for s in range(n):
        rebuilt |= int(segment_value(value, s, seg_bits)) << (s * seg_bits)
    assert rebuilt == value


def test_num_segments_ceiling():
    assert num_segments(12, 6) == 2
    assert num_segments(13, 6) == 3
    assert num_segments(6, 6) == 1
    with pytest.raises(ZeroDivisionError):
        num_segments(6, 0)
