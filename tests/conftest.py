"""Shared fixtures: tiny traces, datasets and trained models.

Expensive artifacts (a trained student, a tabularized model) are
session-scoped so the many tests that probe them pay the cost once.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import PreprocessConfig, build_dataset, train_test_split
from repro.distillation import TrainConfig, train_model
from repro.models import AttentionPredictor, ModelConfig
from repro.tabularization import TableConfig, tabularize_predictor
from repro.traces import make_workload


@pytest.fixture(scope="session")
def small_trace():
    """A short easy (stream-dominated) trace."""
    return make_workload("462.libquantum", scale=0.02, seed=3)


@pytest.fixture(scope="session")
def preprocess_config():
    return PreprocessConfig(history_len=8, window=6, delta_range=32)


@pytest.fixture(scope="session")
def small_dataset(small_trace, preprocess_config):
    return build_dataset(
        small_trace.pcs, small_trace.addrs, preprocess_config, max_samples=1500
    )


@pytest.fixture(scope="session")
def split_dataset(small_dataset):
    return train_test_split(small_dataset, 0.8)


@pytest.fixture(scope="session")
def tiny_model_config(preprocess_config):
    return ModelConfig(
        layers=1,
        dim=16,
        heads=2,
        history_len=preprocess_config.history_len,
        bitmap_size=preprocess_config.bitmap_size,
    )


@pytest.fixture(scope="session")
def trained_student(split_dataset, tiny_model_config):
    """A small attention model trained to competence on the easy trace."""
    ds_train, ds_val = split_dataset
    model = AttentionPredictor(
        tiny_model_config, ds_train.x_addr.shape[2], ds_train.x_pc.shape[2], rng=0
    )
    train_model(model, ds_train, ds_val, TrainConfig(epochs=4, batch_size=64, lr=2e-3, seed=0))
    return model


@pytest.fixture(scope="session")
def tabular_student(trained_student, split_dataset):
    """The trained student converted to tables (with fine-tuning)."""
    ds_train, _ = split_dataset
    model, report = tabularize_predictor(
        trained_student,
        ds_train.x_addr,
        ds_train.x_pc,
        TableConfig.uniform(32, 2),
        fine_tune=True,
        rng=1,
    )
    return model, report


@pytest.fixture(scope="session")
def dart(tabular_student, preprocess_config):
    """The shared serving-suite DART: artifact-backed, fixed decode policy.

    One prefetcher for every engine/serving suite (sharded, multistream,
    hot-swap, conformance, elastic churn) so none of them re-fits tables —
    the engines under test always hold the *same* oracle.
    """
    from repro.prefetch import DARTPrefetcher
    from repro.runtime import ModelArtifact

    tab, _ = tabular_student
    return DARTPrefetcher(
        ModelArtifact(tab, version=1), preprocess_config,
        threshold=0.4, max_degree=3,
    )


@pytest.fixture(scope="session")
def libquantum_traces():
    """Factory for distinct cached access streams: ``make(n, length, seed0)``.

    Generation (not slicing) dominates the cost, so full traces are cached
    per seed across the whole session and every caller slices its own view.
    """
    from repro.traces import make_workload

    cache: dict[int, object] = {}

    def make(n: int, length: int, seed0: int):
        out = []
        for i in range(n):
            seed = seed0 + i
            if seed not in cache:
                cache[seed] = make_workload("462.libquantum", scale=0.01, seed=seed)
            out.append(cache[seed].slice(0, length))
        return out

    return make


@pytest.fixture(scope="module")
def four_traces(libquantum_traces):
    """Four genuinely different access streams (distinct seeds)."""
    return libquantum_traces(4, 700, 10)


@pytest.fixture(scope="module")
def eight_traces(libquantum_traces):
    return libquantum_traces(8, 350, 40)


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)
