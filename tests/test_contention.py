"""The multi-tenant contention world: slots, pollution, attribution."""

import pytest

from repro.runtime import AdmissionController, Emission, ThrottleConfig
from repro.runtime.streaming import StreamingPrefetcher
from repro.sim import (
    TENANT_ADDRESS_STRIDE,
    ContentionConfig,
    Interconnect,
    LevelConfig,
    PoisonedStream,
    simulate_contention,
    tenant_of,
)
from repro.traces import make_workload
from repro.utils.bits import BLOCK_BITS

BLOCK = 1 << BLOCK_BITS


def tiny_traces(n=2, length=600, seed=7):
    scale = max(length / 348_000, 0.005) * 1.1
    return [
        make_workload("462.libquantum", scale=scale, seed=seed + i).slice(0, length)
        for i in range(n)
    ]


class NextBlocksStream(StreamingPrefetcher):
    """Deterministic next-line predictor (degree 2) for world tests."""

    def __init__(self, degree=2):
        self.degree = degree
        self.name = "nextblocks"
        self.latency_cycles = 0.0
        self.storage_bytes = 0
        self.seq = 0

    def ingest(self, pc, addr):
        seq = self.seq
        self.seq += 1
        blk = addr >> BLOCK_BITS
        return [Emission(seq, [blk + j + 1 for j in range(self.degree)])]

    def flush(self):
        return []

    def reset(self):
        self.seq = 0


# ------------------------------------------------------------ interconnect
def test_interconnect_serializes_per_cycle():
    ic = Interconnect(1, 2)
    assert ic.grant(0.0, 0) == 0.0
    assert ic.grant(0.0, 1) == 1.0  # second request in cycle 0 waits a cycle
    assert ic.grant(0.0, 1) == 2.0
    assert ic.grant(5.0, 0) == 5.0  # idle gap: the cursor jumps forward
    assert ic.demand_wait[1] == pytest.approx(3.0)
    assert ic.demand_grants == [2, 2]


def test_interconnect_two_slots_per_cycle():
    ic = Interconnect(2, 1)
    assert ic.grant(0.0, 0) == 0.0
    assert ic.grant(0.0, 0) == 0.0
    assert ic.grant(0.0, 0) == 1.0


def test_interconnect_attributes_prefetch_traffic():
    ic = Interconnect(1, 2)
    ic.grant(0.0, 0, prefetch=True)
    ic.grant(0.0, 1, prefetch=False)
    s = ic.stats()
    assert s["prefetch_grants"] == [1, 0]
    assert s["demand_grants"] == [0, 1]


# ----------------------------------------------------------------- config
def test_config_validation():
    with pytest.raises(ValueError, match="prefetch_level"):
        ContentionConfig(prefetch_level="llc")
    with pytest.raises(ValueError):
        ContentionConfig(slots_per_cycle=0)
    with pytest.raises(ValueError, match="one stream slot"):
        simulate_contention(tiny_traces(2), streams=[None])
    with pytest.raises(ValueError, match="at least one"):
        simulate_contention([])


# ------------------------------------------------------------------ world
def test_tenant_address_spaces_are_disjoint():
    traces = tiny_traces(3)
    res = simulate_contention(traces)
    assert len(res.tenants) == 3
    assert tenant_of(5 + 2 * TENANT_ADDRESS_STRIDE) == 2
    # Demand L2 traffic adds up to the shared totals.
    assert sum(t.l2.accesses for t in res.tenants) == res.l2.accesses
    assert sum(t.l2.misses for t in res.tenants) == res.l2.misses


def test_simulation_is_deterministic():
    traces = tiny_traces(2)
    a = simulate_contention(traces, [NextBlocksStream(), None])
    b = simulate_contention(traces, [NextBlocksStream(), None])
    assert [t.sim.cycles for t in a.tenants] == [t.sim.cycles for t in b.tenants]
    assert a.pollution == b.pollution
    assert a.summary() == b.summary()


def test_prefetching_tenant_beats_no_prefetch_self():
    traces = tiny_traces(1, length=2000)
    base = simulate_contention(traces)
    pf = simulate_contention(traces, [NextBlocksStream()])
    assert pf.tenants[0].sim.ipc > base.tenants[0].sim.ipc
    assert pf.tenants[0].sim.prefetches_issued > 0
    assert pf.tenants[0].sim.prefetches_useful > 0


def test_pollution_matrix_attributes_aggressor_to_victim():
    """A poisoned tenant's prefetch fills must show up as cross-tenant
    evictions attributed to it — and the diagonal stays empty."""
    traces = tiny_traces(3, length=1500)
    # Tiny shared L2 so garbage fills must evict other tenants' lines.
    cfg = ContentionConfig(l2=LevelConfig(32 * 1024, 4, 12.0, policy="plru"))
    streams = [PoisonedStream(NextBlocksStream(), degree=8), None, None]
    res = simulate_contention(traces, streams, cfg)
    assert res.inflicted(0) > 0
    assert all(res.pollution[a][a] == 0 for a in range(3))
    # Victims suffered from tenant 0, not from each other's (absent) prefetches.
    assert res.suffered(1) + res.suffered(2) == res.inflicted(0)
    assert res.pollution[1] == [0, 0, 0] and res.pollution[2] == [0, 0, 0]
    # Live-victim counts are a subset of all pollution counts.
    for a in range(3):
        for v in range(3):
            assert 0 <= res.pollution_live[a][v] <= res.pollution[a][v]
    # The aggressor also burned interconnect slots on its garbage.
    assert res.interconnect["prefetch_grants"][0] > 0
    assert res.interconnect["prefetch_grants"][1] == 0


def test_bandwidth_contention_slows_victims():
    """Tight slots + an aggressive tenant = measurable victim slowdown."""
    traces = tiny_traces(2, length=1500)
    cfg = ContentionConfig(slots_per_cycle=1)
    alone = simulate_contention(traces)
    noisy = simulate_contention(
        traces, [PoisonedStream(NextBlocksStream(), degree=8), None], cfg
    )
    assert noisy.tenants[1].sim.ipc < alone.tenants[1].sim.ipc
    # The wait the victim's demands accumulated is visible and nonzero.
    assert noisy.interconnect["demand_wait_cycles"][1] > 0


def test_prefetch_level_l1_fills_private_cache():
    traces = tiny_traces(1, length=1500)
    l2_only = simulate_contention(
        traces, [NextBlocksStream()], ContentionConfig(prefetch_level="l2")
    )
    to_l1 = simulate_contention(
        traces, [NextBlocksStream()], ContentionConfig(prefetch_level="l1")
    )
    # L1-injected prefetches convert shared-L2 demand lookups into L1 hits.
    assert to_l1.tenants[0].l1.hit_rate > l2_only.tenants[0].l1.hit_rate


def test_collect_returns_oracle_shaped_lists():
    traces = tiny_traces(2, length=300)
    res = simulate_contention(traces, [NextBlocksStream(), None], collect=True)
    assert res.lists is not None and len(res.lists) == 2
    assert len(res.lists[0]) == len(traces[0])
    # Tenant 0's emissions are the scripted next-two-blocks predictions.
    blk0 = int(traces[0].addrs[0]) >> BLOCK_BITS
    assert res.lists[0][0] == [blk0 + 1, blk0 + 2]
    assert all(row == [] for row in res.lists[1])


def test_poisoned_stream_contract_and_determinism():
    p1 = PoisonedStream(NextBlocksStream(), degree=4)
    p2 = PoisonedStream(NextBlocksStream(), degree=4)
    out1 = [p1.ingest(0, i * BLOCK) for i in range(50)]
    out2 = [p2.ingest(0, i * BLOCK) for i in range(50)]
    assert out1 == out2  # deterministic garbage
    flat = [em for ems in out1 for em in ems]
    assert [em.seq for em in flat] == list(range(50))
    assert all(len(em.blocks) == 4 for em in flat)
    with pytest.raises(ValueError):
        PoisonedStream(NextBlocksStream(), degree=0)


def test_throttle_summaries_surface_in_result():
    traces = tiny_traces(2, length=1200)
    ctl = AdmissionController(
        ThrottleConfig(floor=0.2, recover=0.4, min_samples=16,
                       check_every=16, hold=64, lookahead=8)
    )
    streams = [
        ctl.wrap(PoisonedStream(NextBlocksStream(), degree=4), "bad"),
        ctl.wrap(NextBlocksStream(), "good"),
    ]
    res = simulate_contention(traces, streams, ContentionConfig())
    assert set(res.throttle) == {s.name for s in streams}
    bad = res.throttle[streams[0].name]
    assert bad["state"] == "drop" and bad["dropped_blocks"] > 0
    assert res.throttle[streams[1].name]["state"] == "full"
    assert res.summary()["throttle"]
