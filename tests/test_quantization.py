"""k-means, hash-tree encoder, and product quantization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantization import (
    HashTreeEncoder,
    ProductQuantizer,
    build_weight_table,
    kmeans_fit,
    lookup_aggregate,
    pairwise_prototype_table,
)


def _clustered_data(rng, n=600, d=8, k=4, spread=0.05):
    centers = rng.standard_normal((k, d)) * 3
    labels = rng.integers(0, k, size=n)
    return centers[labels] + spread * rng.standard_normal((n, d)), centers


def test_kmeans_recovers_separated_clusters(rng):
    x, true_centers = _clustered_data(rng)
    centers, assign, inertia = kmeans_fit(x, 4, rng=0)
    # Every learned center should be near some true center.
    d = np.linalg.norm(centers[:, None] - true_centers[None], axis=-1).min(axis=1)
    assert (d < 0.5).all()
    assert inertia < x.shape[0] * 0.1


def test_kmeans_assignment_is_nearest(rng):
    x = rng.standard_normal((100, 5))
    centers, assign, _ = kmeans_fit(x, 8, rng=1)
    dist = np.linalg.norm(x[:, None] - centers[None], axis=-1)
    assert np.array_equal(assign, dist.argmin(axis=1))


def test_kmeans_k_exceeds_n(rng):
    x = rng.standard_normal((5, 3))
    centers, assign, inertia = kmeans_fit(x, 16, rng=0)
    assert centers.shape == (16, 3)
    assert inertia == 0.0  # every point is its own prototype


def test_kmeans_identical_points():
    x = np.ones((50, 4))
    centers, assign, inertia = kmeans_fit(x, 4, rng=0)
    assert np.allclose(centers[assign], 1.0)


def test_kmeans_rejects_bad_input():
    with pytest.raises(ValueError):
        kmeans_fit(np.zeros((0, 3)), 2)
    with pytest.raises(ValueError):
        kmeans_fit(np.zeros((5, 3)), 0)


def test_hash_tree_balanced_leaves(rng):
    x = rng.standard_normal((1024, 6))
    tree = HashTreeEncoder(16).fit(x)
    codes = tree.encode(x)
    counts = np.bincount(codes, minlength=16)
    # Median splits keep the tree roughly balanced.
    assert counts.max() <= 4 * max(counts.min(), 1)
    assert tree.prototypes.shape == (16, 6)


def test_hash_tree_encode_latency_is_depth():
    tree = HashTreeEncoder(32)
    assert tree.depth == 5
    with pytest.raises(ValueError):
        HashTreeEncoder(12)  # not a power of two


def test_hash_tree_deterministic(rng):
    x = rng.standard_normal((256, 4))
    t1 = HashTreeEncoder(8).fit(x)
    t2 = HashTreeEncoder(8).fit(x)
    probe = rng.standard_normal((50, 4))
    assert np.array_equal(t1.encode(probe), t2.encode(probe))


@pytest.mark.parametrize("encoder", ["exact", "hash"])
def test_pq_reconstruction_error_decreases_with_k(rng, encoder):
    x, _ = _clustered_data(rng, n=800, d=8, k=8, spread=0.3)
    errs = [
        ProductQuantizer(8, 2, k, encoder=encoder, rng=0).fit(x).quantization_error(x)
        for k in (4, 16, 64)
    ]
    assert errs[0] > errs[1] > errs[2]


def test_pq_encode_shape_and_range(rng):
    x = rng.standard_normal((200, 10))
    pq = ProductQuantizer(10, 3, 16, rng=0).fit(x)  # 10 dims over 3 subspaces: padded
    codes = pq.encode(x)
    assert codes.shape == (200, 3)
    assert codes.min() >= 0 and codes.max() < 16
    assert pq.padded_dim == 12


def test_pq_linear_approximation_improves_with_k(rng):
    x, _ = _clustered_data(rng, n=800, d=16, k=16, spread=0.2)
    w = rng.standard_normal((6, 16))
    b = rng.standard_normal(6)
    exact = x @ w.T + b
    errs = []
    for k in (8, 64, 256):
        pq = ProductQuantizer(16, 4, k, rng=0).fit(x)
        approx = lookup_aggregate(build_weight_table(pq, w, b), pq.encode(x))
        errs.append(float(np.abs(approx - exact).mean()))
    assert errs[0] > errs[1] > errs[2]


def test_bias_folding_adds_exactly_once(rng):
    x = rng.standard_normal((100, 8))
    w = rng.standard_normal((4, 8))
    b = rng.standard_normal(4) * 100  # large so errors would be obvious
    pq = ProductQuantizer(8, 4, 32, rng=0).fit(x)
    codes = pq.encode(x)
    with_b = lookup_aggregate(build_weight_table(pq, w, b), codes)
    without_b = lookup_aggregate(build_weight_table(pq, w, None), codes)
    assert np.allclose(with_b - without_b, b[None, :])


def test_lookup_aggregate_equals_manual_sum(rng):
    table = rng.standard_normal((3, 5, 4))
    codes = rng.integers(0, 5, size=(7, 3))
    out = lookup_aggregate(table, codes)
    for i in range(7):
        ref = sum(table[c, codes[i, c]] for c in range(3))
        assert np.allclose(out[i], ref)


def test_pairwise_prototype_table(rng):
    pa = rng.standard_normal((2, 4, 3))
    pb = rng.standard_normal((2, 4, 3))
    t = pairwise_prototype_table(pa, pb)
    assert t.shape == (2, 4, 4)
    assert np.allclose(t[1, 2, 3], pa[1, 2] @ pb[1, 3])
    with pytest.raises(ValueError):
        pairwise_prototype_table(pa, pb[:1])


def test_pq_validation_errors(rng):
    with pytest.raises(ValueError):
        ProductQuantizer(4, 8, 16)  # more subspaces than dims
    with pytest.raises(ValueError):
        ProductQuantizer(8, 2, 16, encoder="fuzzy")
    pq = ProductQuantizer(8, 2, 4, rng=0)
    with pytest.raises(RuntimeError):
        pq.encode(np.zeros((3, 8)))  # not fitted


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=20, max_value=100),
    c=st.integers(min_value=1, max_value=4),
    k=st.sampled_from([2, 4, 8]),
)
def test_pq_quantized_reconstruction_is_prototype_pick(n, c, k):
    """Property: reconstruction of a training row equals its nearest prototypes."""
    rng = np.random.default_rng(n * 7 + c)
    x = rng.standard_normal((n, 8))
    pq = ProductQuantizer(8, c, k, rng=0).fit(x)
    codes = pq.encode(x)
    recon = pq.reconstruct(codes)
    # re-encoding a reconstruction returns the same codes (idempotence)
    assert np.array_equal(pq.encode(recon), codes)
