"""Pipelined sharded data plane: credit window, chaos fuzz, barrier quiesce.

The pipelined frontend keeps up to ``pipeline_depth`` chunks in flight per
worker and commits replies in per-worker sequence order. These tests pin the
load-bearing claims from DESIGN.md "Pipelined data plane":

* emissions stay **exactly-once and per-stream ascending** at every depth,
  even when workers reply late and jittery (seeded ``chaos_reply_delay``);
* depth 1 **degenerates to lockstep** — same emissions, same worker predict
  schedule, and the meter records a pure one-outstanding occupancy profile;
* every barrier (swap, migrate, rescale, close) **quiesces the window**
  mid-flight without dropping or duplicating an emission;
* the ``stats()["pipeline"]`` meter balances: every send is histogrammed and
  every in-flight request was committed by the time serving returns.
"""

from __future__ import annotations

import pytest


def _drive_handles(eng, handles, traces, seen, churn=None):
    """Ingest all traces through open handles, logging emissions in arrival
    order as ``(seq, blocks)`` per stream; ``churn[i]`` runs before access i."""
    n = len(traces[0])
    for i in range(n):
        if churn and i in churn:
            churn[i]()
        for h, t in zip(handles, traces):
            for em in h.ingest(int(t.pcs[i]), int(t.addrs[i])):
                seen[h.index].append((em.seq, list(em.blocks)))
    for h in handles:
        for em in eng.close_stream(h):
            seen[h.index].append((em.seq, list(em.blocks)))


def _assert_exactly_once_ascending(seen, traces, oracle):
    for s, t in enumerate(traces):
        seqs = [q for q, _ in seen[s]]
        assert seqs == sorted(seqs), f"stream {s}: emissions not ascending"
        assert len(seqs) == len(set(seqs)), f"stream {s}: duplicate emission"
        got = [[] for _ in range(len(t))]
        for q, blocks in seen[s]:
            got[q] = blocks
        assert got == oracle[s], f"stream {s} diverged from batch oracle"


@pytest.fixture(scope="module")
def pipeline_traces(libquantum_traces):
    return libquantum_traces(4, 220, 70)


@pytest.fixture(scope="module")
def pipeline_oracle(dart, pipeline_traces):
    return [dart.prefetch_lists(t) for t in pipeline_traces]


@pytest.mark.parametrize("ipc", ["pipe", "ring"])
@pytest.mark.parametrize("depth", [1, 2, 8])
def test_chaos_fuzz_exactly_once_ascending(
    dart, pipeline_traces, pipeline_oracle, depth, ipc
):
    """Seeded reply-delay fuzz: slow, jittery workers never reorder,
    drop, or duplicate an emission at any window depth, on either
    transport."""
    seen = [[] for _ in pipeline_traces]
    with dart.sharded(
        workers=2, io_chunk=8, ipc=ipc, pipeline_depth=depth,
        chaos_reply_delay=(0.001, 1234 + depth),
    ) as eng:
        handles = [eng.open_stream(f"t{i}") for i in range(len(pipeline_traces))]
        _drive_handles(eng, handles, pipeline_traces, seen)
    _assert_exactly_once_ascending(seen, pipeline_traces, pipeline_oracle)


def test_chaos_serve_poller_bit_identical(dart, pipeline_traces, pipeline_oracle):
    """The select-style serve poller under chaos: deep window, small chunks,
    random worker delays — still bit-identical to the batch oracle."""
    with dart.sharded(
        workers=2, serve_chunk=64, pipeline_depth=8,
        chaos_reply_delay=(0.002, 99),
    ) as eng:
        _, per_stream, lists = eng.serve(pipeline_traces, collect=True)
        meter = eng.stats()["pipeline"]
    for s in range(len(pipeline_traces)):
        assert lists[s] == pipeline_oracle[s], f"stream {s} diverged"
        assert per_stream[s].accesses == len(pipeline_traces[s])
    assert meter["sends"] == sum(meter["inflight_hist"])


def test_depth1_degenerates_to_lockstep(dart, libquantum_traces):
    """Depth 1 is the historical lockstep bit-for-bit: identical emissions,
    identical worker predict schedule, and a pure one-outstanding meter
    (no stalls, every send left exactly one request in flight)."""
    traces = libquantum_traces(2, 260, 90)
    outs, stats = {}, {}
    for depth in (1, 8):
        with dart.sharded(workers=2, pipeline_depth=depth) as eng:
            _, _, lists = eng.serve(traces, collect=True)
            stats[depth] = eng.stats()
            outs[depth] = lists
    assert outs[1] == outs[8]
    # Framing differs (deeper windows ship smaller chunks) but the per-worker
    # ingest order doesn't, so the micro-batch schedule is unchanged.
    assert stats[1]["predict_calls"] == stats[8]["predict_calls"]
    meter = stats[1]["pipeline"]
    assert meter["depth"] == 1
    assert meter["credit_stalls"] == 0
    assert meter["inflight_hist"] == [0, meter["sends"]]
    # The deep window must actually go multi-outstanding (occupancy is a
    # protocol fact, not a timing one — sends outpace commits by design).
    assert sum(stats[8]["pipeline"]["inflight_hist"][2:]) > 0


def test_barriers_quiesce_mid_flight_window(dart, pipeline_traces, pipeline_oracle):
    """Swap / migrate / rescale land while up to 8 chunks are in flight (and
    chaos keeps replies lagging); each barrier quiesces the window first, so
    the drained emissions all commit and the run stays bit-identical."""
    seen = [[] for _ in pipeline_traces]
    with dart.sharded(
        workers=2, io_chunk=4, pipeline_depth=8,
        chaos_reply_delay=(0.001, 7),
    ) as eng:
        handles = [eng.open_stream(f"t{i}") for i in range(len(pipeline_traces))]
        n = len(pipeline_traces[0])
        churn = {
            n // 4: lambda: eng.rescale(3),
            n // 3: lambda: eng.swap_model(dart.predictor),  # no-op generation
            n // 2: lambda: eng.migrate_stream(
                handles[0], (handles[0].shard_id + 1) % eng.workers
            ),
            3 * n // 4: lambda: eng.rescale(2),
        }
        _drive_handles(eng, handles, pipeline_traces, seen, churn=churn)
        elastic = eng.stats()["elastic"]
    assert elastic["migrations"] == 1 and elastic["rescales"] == 2
    _assert_exactly_once_ascending(seen, pipeline_traces, pipeline_oracle)


def test_pipeline_meter_accounting(dart, pipeline_traces):
    """The meter balances and the window is empty once serving returns."""
    with dart.sharded(workers=2, serve_chunk=32, pipeline_depth=4) as eng:
        eng.serve(pipeline_traces)
        meter = eng.stats()["pipeline"]
        assert all(
            not s.inflight and s.inflight_bytes == 0 for s in eng._shards
        )
    assert meter["depth"] == 4
    assert meter["sends"] > 0
    assert meter["sends"] == sum(meter["inflight_hist"])
    assert meter["inflight_hist"][0] == 0  # a send leaves >= 1 in flight
    replies = sum(w["replies"] for w in meter["per_worker"].values())
    assert replies == meter["sends"]
    assert 0.0 <= meter["overlap_ratio"] <= 1.0
    for w in meter["per_worker"].values():
        assert 0 <= w["overlapped"] <= w["replies"]


def test_constructor_validates_pipeline_knobs(dart):
    with pytest.raises(ValueError):
        dart.sharded(workers=1, pipeline_depth=0)
    with pytest.raises(ValueError):
        dart.sharded(workers=1, pipe_window_bytes=100)
