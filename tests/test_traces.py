"""Trace container, generators, workload factories and Table IV statistics."""

import numpy as np
import pytest

from repro.traces import (
    MemoryTrace,
    PAPER_TABLE4,
    WORKLOAD_NAMES,
    make_workload,
    trace_statistics,
)
from repro.traces.generators import (
    BLOCK,
    BurstInterleave,
    LocalChasePhase,
    PatternInterleave,
    PointerChasePhase,
    RandomPhase,
    StreamPhase,
    StridedStencilPhase,
    compose_trace,
)


def test_trace_validation():
    with pytest.raises(ValueError):
        MemoryTrace(np.array([1, 2]), np.array([0]), np.array([0]))
    with pytest.raises(ValueError):
        MemoryTrace(np.array([5, 3]), np.array([0, 0]), np.array([0, 0]))


def test_trace_save_load(tmp_path):
    tr = make_workload("619.lbm", scale=0.01, seed=0)
    tr.save(tmp_path / "t")
    tr2 = MemoryTrace.load(tmp_path / "t", name=tr.name)
    assert np.array_equal(tr.addrs, tr2.addrs)
    assert np.array_equal(tr.pcs, tr2.pcs)


def test_stream_phase_strides_and_wrap():
    ph = StreamPhase(0, region_blocks=10, stride_blocks=3)
    _, a1 = ph.generate(5, 0)
    _, a2 = ph.generate(5, 0)  # cursor continues across calls
    blocks = np.concatenate([a1, a2]) // BLOCK
    assert blocks.tolist() == [(i * 3) % 10 for i in range(10)]
    ph.reset()
    _, a3 = ph.generate(5, 0)
    assert np.array_equal(a3, a1)


def test_stencil_phase_lockstep_constant_cross_deltas():
    ph = StridedStencilPhase(bases=[0, 1 << 20], region_blocks=100, stride_blocks=1)
    _, a = ph.generate(40, 0)
    deltas = np.diff(a // BLOCK)
    # alternating constant cross-array delta and return delta
    assert len(set(deltas.tolist())) <= 3


def test_local_chase_repeats_exactly():
    ph = LocalChasePhase(0, n_nodes=20, stride_lo=4, stride_hi=8, seed=1)
    _, a1 = ph.generate(20, 0)
    _, a2 = ph.generate(20, 0)
    assert np.array_equal(a1, a2)  # one full lap == the next lap
    strides = np.diff(a1 // BLOCK)
    assert strides.min() >= 4 and strides.max() <= 8


def test_pointer_chase_temporal_repeatability():
    ph = PointerChasePhase(0, n_nodes=16, region_blocks=1000, seed=2)
    _, a1 = ph.generate(16, 0)
    _, a2 = ph.generate(16, 0)
    assert np.array_equal(a1, a2)
    assert np.unique(a1).size == 16


def test_random_phase_stays_in_region():
    ph = RandomPhase(1 << 20, region_blocks=64)
    _, a = ph.generate(500, np.random.default_rng(0))
    blocks = (a - (1 << 20)) // BLOCK
    assert blocks.min() >= 0 and blocks.max() < 64


def test_pattern_interleave_deterministic():
    s1 = StreamPhase(0, 1000, pc=1)
    s2 = StreamPhase(1 << 20, 1000, pc=2)
    mix = PatternInterleave([s1, s2], [(0, 3), (1, 1)])
    pcs, _ = mix.generate(12, 0)
    assert pcs.tolist() == [1, 1, 1, 2] * 3


def test_burst_interleave_respects_weights():
    s1 = StreamPhase(0, 10_000, pc=1)
    s2 = StreamPhase(1 << 20, 10_000, pc=2)
    mix = BurstInterleave([s1, s2], [0.9, 0.1], mean_burst=5)
    pcs, _ = mix.generate(5000, np.random.default_rng(0))
    frac = (pcs == 1).mean()
    assert 0.8 < frac < 0.98


def test_compose_trace_jitter_and_gaps():
    ph = StreamPhase(0, 10_000)
    tr = compose_trace([(ph, 2000)], seed=0, jitter_prob=0.5, jitter_blocks=4)
    deltas = np.diff(tr.block_addrs)
    assert np.unique(deltas).size > 3  # jitter created extra deltas
    assert (np.diff(tr.instr_ids) >= 1).all()
    tr0 = compose_trace([(StreamPhase(0, 10_000), 2000)], seed=0)
    assert np.unique(np.diff(tr0.block_addrs)).size <= 2


def test_workload_names_cover_paper():
    assert set(WORKLOAD_NAMES) == set(PAPER_TABLE4)


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_workloads_generate_and_are_deterministic(name):
    t1 = make_workload(name, scale=0.01, seed=4)
    t2 = make_workload(name, scale=0.01, seed=4)
    assert np.array_equal(t1.addrs, t2.addrs)
    assert len(t1) >= 1000
    assert t1.name == name


def test_workload_errors():
    with pytest.raises(KeyError):
        make_workload("999.nope")
    with pytest.raises(ValueError):
        make_workload("619.lbm", scale=0.0)


def test_statistics_fields():
    tr = make_workload("462.libquantum", scale=0.02, seed=0)
    s = trace_statistics(tr, window=5)
    assert s["n_accesses"] == len(tr)
    assert 0 < s["n_pages"] <= s["n_unique_blocks"]
    assert s["n_deltas"] <= s["n_deltas_window"]


def test_libquantum_has_small_delta_vocabulary():
    s = trace_statistics(make_workload("462.libquantum", scale=0.1, seed=0))
    assert s["n_deltas"] < 2000


def test_mcf_is_most_irregular():
    stats = {
        n: trace_statistics(make_workload(n, scale=0.05, seed=0))["n_deltas"]
        for n in ("605.mcf", "462.libquantum", "619.lbm")
    }
    assert stats["605.mcf"] > 10 * stats["462.libquantum"]
    assert stats["605.mcf"] > 10 * stats["619.lbm"]
