"""Record/replay serving contracts.

Captures live sessions — engine-attached (multistream, sharded on both
transports) and plain-stream — into ``DARTTRC1`` traces, replays them on
freshly constructed engines, and pins the declarative contracts: a clean
session replays bit-identically; a tampered trace (mutated emission, dropped
record) fails with a *named* :class:`ContractViolation`; the trace codec
refuses truncated/tampered/foreign containers and version skew with named
errors; and replay pacing derives from the recorded schedule, not the
recording host's wall clock.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime import (
    ContractViolation,
    SessionRecorder,
    SessionTrace,
    replay,
    serve,
)
from repro.runtime.record import (
    EV_ACCESS,
    EV_EMIT,
    EV_MIGRATE,
    EV_RESCALE,
    EV_SWAP,
    TRACE_MAGIC,
)
from repro.runtime.replay import REPLAY_TIMEOUT_FLOOR, effective_reply_timeout

N_STREAMS = 3
LEN = 240


@pytest.fixture(scope="module")
def churn_traces(libquantum_traces):
    return libquantum_traces(N_STREAMS, LEN, 70)


def _pairs(trace):
    return list(zip(trace.pcs.tolist(), trace.addrs.tolist()))


def record_sharded_churn(pf, traces, **engine_kwargs):
    """Record an elastic sharded session: mid-session migration, swap,
    rescale up and back down, a late admission, and full close-out."""
    recorder = SessionRecorder()
    engine = pf.sharded(workers=2, batch_size=32, io_chunk=16, **engine_kwargs)
    recorder.attach(engine, model=pf.artifact)
    with engine:
        handles = [engine.stream(f"s{i}") for i in range(len(traces))]
        pairs = [_pairs(t) for t in traces]
        length = min(len(p) for p in pairs)
        late = None
        for p in range(length):
            if p == length // 4:
                engine.rescale(3)
            if p == length // 3:
                late = engine.stream("late")
            if p == length // 2:
                src = engine._shards[handles[0].shard_id]
                target = next(
                    s.id for s in engine._shards[: engine.workers]
                    if s.id != src.id
                )
                engine.migrate_stream(handles[0], target)
            if p == 5 * length // 8:
                nxt = pf.artifact.successor(
                    pf.artifact.model, reason="record-replay churn"
                )
                engine.swap_model(nxt)
            if p == 3 * length // 4:
                engine.rescale(2)
            for h, pr in zip(handles, pairs):
                h.ingest(*pr[p])
            if late is not None and p >= length // 3:
                h_pc, h_addr = pairs[0][p - length // 3]
                late.ingest(h_pc, h_addr)
        for h in handles:
            engine.close_stream(h)
        if late is not None:
            engine.close_stream(late)
    return recorder.trace()


@pytest.mark.parametrize("ipc", ["pipe", "ring"])
def test_sharded_churn_replays_bit_identically(dart, churn_traces, ipc):
    trace = record_sharded_churn(dart, churn_traces, ipc=ipc)
    # The session really exercised the control plane.
    kinds = set(trace.events[:, 0].tolist())
    assert {EV_MIGRATE, EV_RESCALE, EV_SWAP} <= kinds
    assert trace.meta["engine"]["ipc"] == ipc
    assert trace.meta["boot_model"] in trace.models

    report = replay(trace)
    assert report.column.startswith("sharded")
    assert report.streams == N_STREAMS + 1
    assert report.accesses == trace.summary()["accesses"]
    assert report.emissions == trace.summary()["emissions"]
    assert report.swaps == 1
    assert report.migrations >= 1
    assert report.rescales == 2
    assert "bit-identity" in report.contracts


def test_sharded_trace_replays_cross_column(dart, churn_traces):
    """A sharded session replays bit-identically on the in-process column
    (the swap target shares the boot tables, so the swap is bit-transparent
    and migrations/rescales are no-ops)."""
    trace = record_sharded_churn(dart, churn_traces)
    report = replay(trace, column="multistream")
    assert report.column == "multistream"
    assert report.emissions == trace.summary()["emissions"]


def test_sharded_trace_round_trips_through_disk(dart, churn_traces, tmp_path):
    trace = record_sharded_churn(dart, churn_traces)
    path = str(tmp_path / "session.darttrc")
    n = trace.save(path)
    assert n > 0
    report = replay(path, column="multistream")
    assert report.accesses == trace.summary()["accesses"]


def test_mutated_emission_fails_bit_identity(dart, churn_traces):
    trace = record_sharded_churn(dart, churn_traces)
    emit_rows = np.flatnonzero(
        (trace.events[:, 0] == EV_EMIT) & (trace.events[:, 4] > 0)
    )
    off = int(trace.events[emit_rows[len(emit_rows) // 2], 3])
    trace.blocks[off] += 1  # flip one prefetched block address
    with pytest.raises(ContractViolation) as exc:
        replay(trace, column="multistream")
    assert exc.value.contract == "bit-identity"
    assert exc.value.stream is not None and exc.value.index is not None


def test_dropped_record_fails_exactly_once(dart, churn_traces):
    trace = record_sharded_churn(dart, churn_traces)
    emit_rows = np.flatnonzero(trace.events[:, 0] == EV_EMIT)
    victim = int(emit_rows[len(emit_rows) // 3])
    tampered = SessionTrace(
        np.delete(trace.events, victim, axis=0), trace.blocks, trace.meta,
        trace.models,
    )
    # Recorded-side contract: fails before any replay engine is constructed.
    with pytest.raises(ContractViolation) as exc:
        replay(tampered, column="multistream")
    assert exc.value.contract == "exactly-once-ascending"
    assert "missing" in str(exc.value) or "dropped" in str(exc.value)


def test_duplicated_record_fails_exactly_once(dart, churn_traces):
    trace = record_sharded_churn(dart, churn_traces)
    emit_rows = np.flatnonzero(trace.events[:, 0] == EV_EMIT)
    victim = int(emit_rows[len(emit_rows) // 2])
    dup = np.insert(trace.events, victim, trace.events[victim], axis=0)
    tampered = SessionTrace(dup, trace.blocks, trace.meta, trace.models)
    with pytest.raises(ContractViolation) as exc:
        replay(tampered, column="multistream")
    assert exc.value.contract == "exactly-once-ascending"
    assert "duplicate or out-of-order" in str(exc.value)


def test_multistream_session_records_and_replays(dart, churn_traces):
    recorder = SessionRecorder()
    engine = dart.multistream(batch_size=32)
    recorder.attach(engine, model=dart.artifact)
    handles = [engine.stream(f"m{i}") for i in range(len(churn_traces))]
    pairs = [_pairs(t) for t in churn_traces]
    length = min(len(p) for p in pairs)
    for p in range(length):
        if p == length // 2:
            engine.swap_model(
                dart.artifact.successor(dart.artifact.model, reason="ms swap")
            )
        for h, pr in zip(handles, pairs):
            h.ingest(*pr[p])
    engine.close_stream(handles[0].index)
    for h in handles[1:]:
        h.flush()
    trace = recorder.trace()
    assert trace.meta["engine"]["column"] == "multistream"
    report = replay(trace)
    assert report.column == "multistream"
    assert report.swaps == 1
    assert report.emissions == trace.summary()["emissions"]


def test_serve_records_plain_stream(dart, churn_traces, preprocess_config):
    """The engine-less path: ``serve(..., recorder=...)`` wraps the stream in
    a recording proxy and the trace replays on the multistream column."""
    recorder = SessionRecorder()
    recorder.set_preprocess(preprocess_config)
    stats, _ = serve(
        dart.stream(batch_size=32), churn_traces[0], recorder=recorder
    )
    trace = recorder.trace()
    assert trace.meta["engine"]["column"] == "stream"
    assert trace.summary()["accesses"] == stats.accesses
    # Boot model not embedded (streams carry no artifact) — named refusal...
    with pytest.raises(ValueError, match="embeds no boot model"):
        replay(trace)
    # ...and an explicit model + the stream's serving knobs replay it.
    report = replay(
        trace, model=dart.artifact,
        engine_overrides={"batch_size": 32, "threshold": 0.4, "max_degree": 3},
    )
    assert report.accesses == stats.accesses
    assert report.emissions == trace.summary()["emissions"]


# ------------------------------------------------------------- codec fuzzing
def _random_trace(rng: np.random.Generator) -> SessionTrace:
    """A synthetic session assembled through the recorder hooks."""
    from repro.runtime.streaming import Emission

    rec = SessionRecorder()
    rec._engine_meta = {"column": "multistream", "workers": 1, "batch_size": 8}
    n_streams = int(rng.integers(1, 4))
    for s in range(n_streams):
        rec.on_open(s, f"fuzz[{s}]")
    for s in range(n_streams):
        n = int(rng.integers(0, 30))
        for seq in range(n):
            rec.on_access(s, int(rng.integers(0, 1 << 30)),
                          int(rng.integers(0, 1 << 40)))
            blocks = rng.integers(0, 1 << 30, size=int(rng.integers(0, 4)))
            rec.on_emissions(s, [Emission(seq, blocks.tolist())])
    rec.on_flush()
    return rec.trace()


def test_trace_codec_round_trips_random_sessions():
    for seed in range(8):
        rng = np.random.default_rng(seed)
        trace = _random_trace(rng)
        back = SessionTrace.from_bytes(trace.to_bytes())
        assert np.array_equal(back.events, trace.events)
        assert np.array_equal(back.blocks, trace.blocks)
        assert back.meta["engine"] == trace.meta["engine"]
        assert back.accesses() == trace.accesses()
        assert back.emissions() == trace.emissions()


def test_trace_codec_refuses_bad_magic():
    data = _random_trace(np.random.default_rng(0)).to_bytes()
    with pytest.raises(ValueError, match="not a session trace"):
        SessionTrace.from_bytes(b"XXXXXXXX" + data[8:])


def test_trace_codec_refuses_truncation():
    data = _random_trace(np.random.default_rng(1)).to_bytes()
    with pytest.raises(ValueError, match="truncated session trace"):
        SessionTrace.from_bytes(data[: len(data) // 2])
    with pytest.raises(ValueError, match="extends past the buffer"):
        SessionTrace.from_bytes(data[:-3])


def test_trace_codec_refuses_foreign_containers():
    from repro.registry.codec import pack_arrays

    reg = pack_arrays({"x": np.arange(4)}, b"DARTREG1", what="registry blob")
    with pytest.raises(ValueError, match="not a session trace"):
        SessionTrace.from_bytes(reg)


def test_trace_codec_refuses_version_skew():
    from repro.registry.codec import pack_arrays

    skewed = pack_arrays(
        {"events": np.empty((0, 5), dtype=np.int64),
         "blocks": np.empty(0, dtype=np.int64)},
        TRACE_MAGIC,
        meta={"trace_format": 2},
        what="session trace",
    )
    with pytest.raises(ValueError, match="format 2.*replays format 1"):
        SessionTrace.from_bytes(skewed)


def test_trace_codec_refuses_missing_event_log():
    from repro.registry.codec import pack_arrays

    hollow = pack_arrays(
        {"blocks": np.empty(0, dtype=np.int64)}, TRACE_MAGIC,
        meta={"trace_format": 1}, what="session trace",
    )
    with pytest.raises(ValueError, match="missing its event log"):
        SessionTrace.from_bytes(hollow)


# -------------------------------------------------- cross-host determinism
def test_replay_timeout_floors_recorded_value():
    assert effective_reply_timeout({"timing": {"reply_timeout": 0.2}}) == (
        REPLAY_TIMEOUT_FLOOR
    )
    assert effective_reply_timeout({"timing": {}}) == REPLAY_TIMEOUT_FLOOR
    assert effective_reply_timeout(
        {"timing": {"reply_timeout": 2 * REPLAY_TIMEOUT_FLOOR}}
    ) == 2 * REPLAY_TIMEOUT_FLOOR


def test_replay_survives_slower_host(dart, libquantum_traces):
    """A session recorded with an aggressive reply_timeout replays on a
    'slower host' (chaos-delayed worker replies far beyond that timeout)
    without spurious timeouts: replay pacing derives from the recorded
    schedule, with the recorded timeout raised to a generous floor."""
    traces = libquantum_traces(2, 120, 90)
    recorder = SessionRecorder()
    engine = dart.sharded(
        workers=2, batch_size=32, io_chunk=16, reply_timeout=0.2
    )
    recorder.attach(engine, model=dart.artifact)
    with engine:
        handles = [engine.stream(f"t{i}") for i in range(2)]
        for pr0, pr1 in zip(_pairs(traces[0]), _pairs(traces[1])):
            handles[0].ingest(*pr0)
            handles[1].ingest(*pr1)
        for h in handles:
            engine.close_stream(h)
    trace = recorder.trace()
    assert trace.meta["timing"]["reply_timeout"] == pytest.approx(0.2)
    # Each data-plane reply now takes up to 0.4 s — double the *recorded*
    # timeout. The floored replay timeout must ride it out.
    report = replay(trace, engine_overrides={"chaos_reply_delay": (0.4, 7)})
    assert report.reply_timeout == REPLAY_TIMEOUT_FLOOR
    assert report.emissions == trace.summary()["emissions"]


# ------------------------------------------------------------------ CLI face
def test_cli_record_replay_round_trip(dart, tmp_path, capsys):
    import json as _json

    from repro.cli import main as cli_main

    tables = str(tmp_path / "tables.npz")
    dart.artifact.save(tables)
    out = str(tmp_path / "session.darttrc")
    rc = cli_main([
        "record", "--tables", tables, "--scale", "0.02", "--workers", "2",
        "--batch-size", "32", "-o", out,
    ])
    assert rc == 0
    assert "recorded sharded session" in capsys.readouterr().out
    report_path = tmp_path / "replay.json"
    rc = cli_main(["replay", out, "--json", str(report_path)])
    printed = capsys.readouterr().out
    assert rc == 0
    assert "contracts held" in printed
    report = _json.loads(report_path.read_text())
    assert report["column"] == "sharded"
    assert report["swaps"] == 1
    assert report["migrations"] >= 1
    # Cross-column replay of the same golden trace from the CLI.
    assert cli_main(["replay", out, "--column", "multistream"]) == 0
