"""Sharded multi-process serving: identity, swap broadcast, failure, cleanup.

The acceptance bar: :class:`ShardedEngine` per-stream emissions are
bit-identical to the single-process :class:`MultiStreamEngine` for N=8
streams at W in {1, 2, 4} — including across a mid-stream ``swap_model``
broadcast — and a dying worker surfaces as a named :class:`ShardFailure`
(with the affected stream ids) instead of a hang, with every shared-memory
segment unlinked by ``close()`` no matter how the run ended.
"""

from __future__ import annotations

import time
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.runtime import ShardFailure, serve, serve_interleaved

# The tiny DART and the eight trace shards come from the shared fixtures in
# conftest.py (`dart`, `eight_traces`) — one model fit for the whole session.
N_STREAMS = 8
LEN = 350


@pytest.fixture(scope="module")
def reference_lists(dart, eight_traces):
    """Single-process MultiStreamEngine output: the identity baseline."""
    engine = dart.multistream(batch_size=64)
    _, _, lists = serve_interleaved(
        engine.streams(N_STREAMS), eight_traces, collect=True
    )
    return lists


# ------------------------------------------------------------------ identity
@pytest.mark.parametrize("workers", [1, 2, 4])
def test_sharded_matches_multistream(dart, eight_traces, reference_lists, workers):
    with dart.sharded(workers=workers, batch_size=64) as engine:
        agg, per_stream, lists = engine.serve(eight_traces, collect=True)
        stats = engine.stats()
    for i in range(N_STREAMS):
        assert lists[i] == reference_lists[i], f"stream {i} diverged at W={workers}"
        assert per_stream[i].accesses == LEN
    assert agg.accesses == N_STREAMS * LEN
    assert stats["predict_calls"] > 0
    assert stats["model_copies"] == 1  # one shm segment for the whole fleet
    assert stats["shm_bytes"] is not None
    assert any(any(row) for row in lists[0])


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_sharded_swap_broadcast_mid_stream(dart, eight_traces, reference_lists, workers):
    """A no-op version bump broadcast halfway must not change one emission."""
    artifact = dart.artifact
    engine = dart.sharded(workers=workers, batch_size=64, io_chunk=32)
    collected = [[[] for _ in range(LEN)] for _ in range(N_STREAMS)]
    with engine:
        handles = engine.streams(N_STREAMS)

        def pump(lo, hi):
            for i in range(lo, hi):
                for h, t in zip(handles, eight_traces):
                    for em in h.ingest(int(t.pcs[i]), int(t.addrs[i])):
                        collected[h.index][em.seq] = list(em.blocks)

        pump(0, LEN // 2)
        engine.swap_model(artifact.successor(artifact.model, reason="rotate"))
        assert engine.swaps == 1
        assert engine.model_version == 2
        pump(LEN // 2, LEN)
        for h in handles:
            for em in h.flush():
                collected[h.index][em.seq] = list(em.blocks)
        assert engine.stats()["model_version"] == 2
    for i in range(N_STREAMS):
        assert collected[i] == reference_lists[i], (
            f"stream {i} diverged across the swap at W={workers}"
        )


def test_shard_handle_is_a_streaming_prefetcher(dart, eight_traces):
    """serve() drives a ShardHandle like any stream; emission invariant holds."""
    with dart.sharded(workers=2, batch_size=32) as engine:
        handle = engine.stream("solo")
        stats, lists = serve(handle, eight_traces[0], collect=True)
    assert stats.accesses == LEN
    assert lists == dart.prefetch_lists(eight_traces[0])


def test_swap_refused_before_anything_changes(dart, eight_traces):
    class WrongGeometry:
        class model_config:
            bitmap_size = 4096
            history_len = 99

        def predict_proba(self):  # pragma: no cover - never called
            pass

    with dart.sharded(workers=2, batch_size=64) as engine:
        handles = engine.streams(2)
        with pytest.raises(ValueError, match="geometry"):
            engine.swap_model(WrongGeometry())
        assert engine.swaps == 0
        # The refusal left the fleet serving: a full run still matches batch.
        for h, trace in zip(handles, eight_traces):
            out = [[] for _ in range(LEN)]
            for i in range(LEN):
                for em in h.ingest(int(trace.pcs[i]), int(trace.addrs[i])):
                    out[em.seq] = list(em.blocks)
            for em in h.flush():
                out[em.seq] = list(em.blocks)
            assert out == dart.prefetch_lists(trace)


# ------------------------------------------------------------------- failure
def test_worker_death_raises_named_shard_failure(dart, eight_traces):
    """Kill one worker mid-stream: a prompt ShardFailure naming its streams."""
    engine = dart.sharded(workers=2, batch_size=64, io_chunk=16)
    try:
        handles = engine.streams(4)
        for i in range(60):
            for h, t in zip(handles, eight_traces):
                h.ingest(int(t.pcs[i]), int(t.addrs[i]))
        victim = engine._shards[0]
        victim.process.kill()
        victim.process.join(timeout=5.0)
        t0 = time.monotonic()
        with pytest.raises(ShardFailure) as exc:
            for i in range(60, LEN):
                for h, t in zip(handles, eight_traces):
                    h.ingest(int(t.pcs[i]), int(t.addrs[i]))
        assert time.monotonic() - t0 < 10.0  # no hang on the dead pipe
        # Streams 0 and 2 live on shard 0 (round-robin placement).
        assert exc.value.shard == 0
        assert exc.value.stream_ids == [0, 2]
        assert len(exc.value.stream_names) == 2
        # The failure is sticky for that shard.
        with pytest.raises(ShardFailure):
            engine.flush_all()
    finally:
        engine.close()


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_crash_injection_segments_always_unlinked(dart, eight_traces, seed):
    """Seeded kill at a random point: close() still unlinks every segment."""
    rng = np.random.default_rng(900 + seed)
    kill_at = int(rng.integers(10, LEN - 10))
    victim_id = int(rng.integers(0, 2))
    engine = dart.sharded(workers=2, batch_size=64, io_chunk=8)
    handles = engine.streams(4)
    names = [pub.name for pub in engine._publications]
    assert names, "the DART path must publish a segment"
    try:
        with pytest.raises(ShardFailure):
            for i in range(LEN):
                if i == kill_at:
                    engine._shards[victim_id].process.kill()
                    engine._shards[victim_id].process.join(timeout=5.0)
                for h, t in zip(handles, eight_traces):
                    h.ingest(int(t.pcs[i]), int(t.addrs[i]))
            engine.flush_all()  # small io_chunk may defer the failing dispatch
    finally:
        engine.close()
    for name in names:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


def test_context_manager_exit_unlinks(dart, eight_traces):
    with dart.sharded(workers=2, batch_size=64) as engine:
        engine.serve(eight_traces[:2], collect=False)
        name = engine._publications[0].name
    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=name)
    engine.close()  # idempotent


def test_swap_with_dead_worker_keeps_survivors_consistent(dart, eight_traces):
    """A shard dying mid-broadcast still raises, but survivors end on the new
    version with their request-reply protocol in lockstep (no stale acks)."""
    oracle = dart.prefetch_lists(eight_traces[0])
    engine = dart.sharded(workers=2, batch_size=64, io_chunk=16)
    try:
        handles = engine.streams(4)
        collected = {}
        for i in range(40):
            for h, t in zip(handles, eight_traces):
                for em in h.ingest(int(t.pcs[i]), int(t.addrs[i])):
                    if h.index == 0:
                        collected[em.seq] = list(em.blocks)
        engine._shards[1].process.kill()
        engine._shards[1].process.join(timeout=5.0)
        with pytest.raises(ShardFailure):
            engine.swap_model(
                dart.artifact.successor(dart.artifact.model, reason="rotate")
            )
        # Live workers swapped; counters advanced once.
        assert engine.swaps == 1 and engine.model_version == 2
        # Stream 0 lives on the surviving shard: pumping it further must keep
        # yielding in-order, oracle-identical emissions (a desynchronized
        # pipe would route a stale swap ack as the access reply).
        for i in range(40, 150):
            t = eight_traces[0]
            for em in handles[0].ingest(int(t.pcs[i]), int(t.addrs[i])):
                collected[em.seq] = list(em.blocks)
        assert collected, "survivor stopped emitting after the failed swap"
        assert all(blocks == oracle[seq] for seq, blocks in collected.items())
        # Both generations' segments are unlinked in the end.
        names = [pub.name for pub in engine._publications]
    finally:
        engine.close()
    for name in names:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


def test_failed_publish_keeps_live_segment_tracked(dart):
    """If publishing the replacement model fails, the serving segment must
    stay owned by the engine so close() still unlinks it."""
    engine = dart.sharded(workers=1, batch_size=64)
    engine.start()
    name = engine._publications[0].name
    with pytest.raises(TypeError, match="wire codec"):
        engine.swap_model(lambda xa, xp, batch_size=1: None)
    assert [pub.name for pub in engine._publications] == [name]
    assert engine.swaps == 0
    engine.close()
    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=name)


# ----------------------------------------------------------------- plumbing
def test_registration_and_validation_errors(dart, eight_traces):
    with pytest.raises(ValueError):
        dart.sharded(workers=0)
    with dart.sharded(workers=2) as engine:
        with pytest.raises(ValueError):
            engine.streams(2, names=["only-one"])
        engine.streams(2)
        with pytest.raises(ValueError):
            engine.serve(eight_traces[:3])  # 3 sources for 2 streams
    with pytest.raises(TypeError, match="wire codec"):
        from repro.runtime import ShardedEngine

        ShardedEngine(lambda xa, xp, batch_size=1: None, dart.config, workers=1)


def test_stats_aggregate_across_shards(dart, eight_traces):
    with dart.sharded(workers=2, batch_size=32, max_wait=8) as engine:
        agg, per_stream, _ = engine.serve(eight_traces[:4], collect=False)
        stats = engine.stats()
    assert stats["streams"] == 4 and stats["workers"] == 2
    assert stats["queries_answered"] == 4 * (LEN - (dart.config.history_len - 1))
    assert stats["predict_calls"] > 0
    assert stats["mean_batch_fill"] > 1.0
    # Latency accounting: every access was timed in some worker, and the
    # aggregate sketch is exactly the union of the per-stream sketches.
    assert agg.extra["latency_count"] == sum(
        s.extra["latency_count"] for s in per_stream
    )
    assert agg.extra["latency_count"] == 4 * LEN
    assert agg.throughput > 0


def test_handle_reset_is_isolated(dart, eight_traces):
    a, b = eight_traces[0], eight_traces[1]
    with dart.sharded(workers=2, batch_size=64, io_chunk=16) as engine:
        ha, hb = engine.streams(2)
        for i in range(100):
            ha.ingest(int(a.pcs[i]), int(a.addrs[i]))
            hb.ingest(int(b.pcs[i]), int(b.addrs[i]))
        ha.reset()
        hb.reset()
        assert ha.seq == 0
        out = [[] for _ in range(LEN)]
        for i in range(LEN):
            for em in hb.ingest(int(b.pcs[i]), int(b.addrs[i])):
                out[em.seq] = list(em.blocks)
        for em in hb.flush():
            out[em.seq] = list(em.blocks)
        assert out == dart.prefetch_lists(b)


# ------------------------------------------------------------ REPLY_ERR audit
def test_shard_failure_names_the_opcode_in_flight():
    """The failure message carries the request opcode the worker was serving
    (named when known, numeric otherwise, absent when there was none)."""
    from repro.runtime.sharded import OP_ACCESS

    exc = ShardFailure(1, [3], ["s[3]"], "Traceback ...", opcode=OP_ACCESS)
    assert exc.opcode == OP_ACCESS
    assert "during OP_ACCESS" in str(exc)
    assert "op 99" in str(ShardFailure(0, [], [], "x", opcode=99))
    assert "during" not in str(ShardFailure(0, [], [], "x"))


@pytest.mark.parametrize("ipc", ["pipe", "ring"])
@pytest.mark.parametrize("depth", [1, 3])
def test_worker_error_audit_on_both_transports(dart, eight_traces, ipc, depth):
    """A worker-side exception (not a death) must surface as a ShardFailure
    naming the shard, the opcode in flight, and the affected streams — with
    the worker's traceback attached — on both transports and with a
    pipelined data plane. Regression: the error reply used to ship meta=0,
    so the audit trail lost the operation that failed."""
    from repro.runtime.sharded import OP_ACCESS

    engine = dart.sharded(
        workers=2, batch_size=32, io_chunk=16, ipc=ipc, pipeline_depth=depth
    )
    try:
        handles = engine.streams(4)
        for i in range(40):
            for h, t in zip(handles, eight_traces):
                h.ingest(int(t.pcs[i]), int(t.addrs[i]))
        # Malformed data-plane frame: 3 bytes cannot parse as int64 rows, so
        # the worker's OP_ACCESS handler raises mid-request.
        engine._send_data(engine._shards[0], OP_ACCESS, True, b"xyz")
        with pytest.raises(ShardFailure) as exc:
            engine.flush_all()
        assert exc.value.shard == 0
        assert exc.value.opcode == OP_ACCESS
        assert "during OP_ACCESS" in str(exc.value)
        # Round-robin placement: streams 0 and 2 live on shard 0.
        assert exc.value.stream_ids == [0, 2]
        assert len(exc.value.stream_names) == 2
        assert "Traceback" in exc.value.reason
        # The failure is sticky for that shard.
        with pytest.raises(ShardFailure):
            engine.flush_all()
    finally:
        engine.close()
