"""Chunked trace ingestion (`iter_chunks` / `iter_accesses`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.traces import MemoryTrace, iter_accesses, iter_chunks, make_workload, save_csv, save_text


@pytest.fixture(scope="module")
def trace():
    return make_workload("462.libquantum", scale=0.01, seed=5)


def _concat(chunks):
    chunks = list(chunks)
    return MemoryTrace(
        np.concatenate([c.instr_ids for c in chunks]),
        np.concatenate([c.pcs for c in chunks]),
        np.concatenate([c.addrs for c in chunks]),
    )


@pytest.mark.parametrize("fmt", ["npz", "csv", "csv.gz", "txt"])
def test_iter_chunks_roundtrip(trace, tmp_path, fmt):
    path = tmp_path / f"t.{fmt}"
    if fmt == "npz":
        trace.save(path)
    elif fmt.startswith("csv"):
        save_csv(trace, path)
    else:
        save_text(trace, path)
    chunks = list(iter_chunks(path, chunk_size=700))
    assert all(len(c) <= 700 for c in chunks)
    assert len(chunks) == -(-len(trace) // 700)  # ceil division
    got = _concat(chunks)
    assert np.array_equal(got.instr_ids, trace.instr_ids)
    assert np.array_equal(got.pcs, trace.pcs)
    assert np.array_equal(got.addrs, trace.addrs)


def test_iter_accesses_matches_trace(trace, tmp_path):
    path = tmp_path / "t.csv"
    save_csv(trace, path)
    rows = list(iter_accesses(path, chunk_size=512))
    assert len(rows) == len(trace)
    i, pc, addr = rows[37]
    assert (i, pc, addr) == (
        int(trace.instr_ids[37]),
        int(trace.pcs[37]),
        int(trace.addrs[37]),
    )


def test_iter_chunks_validates_monotonicity_across_chunks(tmp_path):
    path = tmp_path / "bad.csv"
    lines = ["instr_id,pc,addr"] + [f"{i},{i},{i * 64}" for i in range(10)]
    lines.insert(8, "2,99,640")  # instr id regresses at a chunk boundary
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(ValueError, match="nondecreasing"):
        list(iter_chunks(path, chunk_size=4))


def test_iter_chunks_rejects_bad_chunk_size(tmp_path):
    path = tmp_path / "t.csv"
    path.write_text("1,2,3\n")
    with pytest.raises(ValueError):
        list(iter_chunks(path, chunk_size=0))


def test_chunked_serving_never_materializes(trace, tmp_path):
    """End to end: file -> chunk iterator -> streaming engine."""
    from repro.prefetch import StridePrefetcher
    from repro.runtime import serve

    path = tmp_path / "t.csv.gz"
    save_csv(trace, path)
    pf = StridePrefetcher()
    stats, lists = serve(pf.stream(), iter_chunks(path, chunk_size=300), collect=True)
    assert stats.accesses == len(trace)
    assert lists == pf.prefetch_lists(trace)
