"""Attention and LSTM predictor models."""

import numpy as np
import pytest

from repro.models import (
    AttentionPredictor,
    LSTMPredictor,
    ModelConfig,
    STUDENT_CONFIG,
    TEACHER_CONFIG,
)


def test_config_defaults_and_validation():
    cfg = ModelConfig(layers=2, dim=64, heads=4)
    assert cfg.ffn_dim == 256  # 4×D default
    with pytest.raises(ValueError):
        ModelConfig(dim=30, heads=4)
    with pytest.raises(ValueError):
        ModelConfig(layers=0)
    assert TEACHER_CONFIG.dim == 256 and STUDENT_CONFIG.dim == 32  # Table V


def test_config_scaled_copy():
    cfg = STUDENT_CONFIG.scaled(dim=64, heads=4)
    assert cfg.dim == 64 and cfg.layers == STUDENT_CONFIG.layers


def _make_inputs(rng, b=4, t=8, sa=5, sp=3):
    return rng.random((b, t, sa)), rng.random((b, t, sp))


def test_attention_predictor_shapes(rng):
    cfg = ModelConfig(layers=2, dim=16, heads=2, history_len=8, bitmap_size=32)
    m = AttentionPredictor(cfg, addr_dim=5, pc_dim=3, rng=0)
    xa, xp = _make_inputs(rng)
    logits = m.forward(xa, xp)
    assert logits.shape == (4, 32)
    probs = m.predict_proba(xa, xp)
    assert probs.shape == (4, 32) and (0 <= probs).all() and (probs <= 1).all()


def test_attention_predictor_backward_shapes(rng):
    cfg = ModelConfig(layers=1, dim=16, heads=2, history_len=8, bitmap_size=32)
    m = AttentionPredictor(cfg, addr_dim=5, pc_dim=3, rng=0)
    xa, xp = _make_inputs(rng)
    logits = m.forward(xa, xp)
    ga, gp = m.backward(np.ones_like(logits))
    assert ga.shape == xa.shape and gp.shape == xp.shape


def test_trunk_activations_keys_and_consistency(rng):
    cfg = ModelConfig(layers=2, dim=16, heads=2, history_len=8, bitmap_size=32)
    m = AttentionPredictor(cfg, addr_dim=5, pc_dim=3, rng=0)
    xa, xp = _make_inputs(rng)
    acts = m.trunk_activations(xa, xp)
    for key in ("embed", "enc0/qkv", "enc0/post_ln1", "enc1/post_ln2", "pooled", "logits"):
        assert key in acts
    # trunk_activations' logits must equal the plain forward
    assert np.allclose(acts["logits"], m.forward(xa, xp))


def test_predict_batching_consistency(rng):
    cfg = ModelConfig(layers=1, dim=16, heads=2, history_len=8, bitmap_size=32)
    m = AttentionPredictor(cfg, addr_dim=5, pc_dim=3, rng=0)
    xa, xp = _make_inputs(rng, b=10)
    full = m.predict_logits(xa, xp, batch_size=10)
    chunked = m.predict_logits(xa, xp, batch_size=3)
    assert np.allclose(full, chunked)


def test_lstm_predictor_shapes_and_backward(rng):
    m = LSTMPredictor(addr_dim=5, pc_dim=3, hidden_dim=12, bitmap_size=32, rng=0)
    xa, xp = _make_inputs(rng)
    logits = m.forward(xa, xp)
    assert logits.shape == (4, 32)
    ga, gp = m.backward(np.ones_like(logits))
    assert ga.shape == xa.shape and gp.shape == xp.shape
    probs = m.predict_proba(xa, xp)
    assert ((0 <= probs) & (probs <= 1)).all()


def test_models_are_deterministic_under_seed(rng):
    cfg = ModelConfig(layers=1, dim=16, heads=2, history_len=8, bitmap_size=32)
    xa, xp = _make_inputs(rng)
    m1 = AttentionPredictor(cfg, 5, 3, rng=7)
    m2 = AttentionPredictor(cfg, 5, 3, rng=7)
    assert np.allclose(m1.forward(xa, xp), m2.forward(xa, xp))
