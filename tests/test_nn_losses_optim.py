"""Loss functions (BCE, MSE, KD) and optimizers."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, Linear, clip_global_norm
from repro.nn.functional import sigmoid
from repro.nn.losses import (
    bce_with_logits,
    binary_kl,
    kd_bce_loss,
    kd_loss,
    mse_loss,
    t_sigmoid,
)


def test_bce_matches_reference(rng):
    z = rng.standard_normal((10, 4))
    t = (rng.random((10, 4)) > 0.5).astype(float)
    loss, grad = bce_with_logits(z, t)
    p = sigmoid(z)
    ref = -(t * np.log(p) + (1 - t) * np.log(1 - p)).mean()
    assert abs(loss - ref) < 1e-9
    assert np.allclose(grad, (p - t) / z.size)


def test_bce_extreme_logits_stable():
    z = np.array([[800.0, -800.0]])
    t = np.array([[1.0, 0.0]])
    loss, grad = bce_with_logits(z, t)
    assert np.isfinite(loss) and np.all(np.isfinite(grad))
    assert loss < 1e-6


def test_mse_grad_finite_difference(rng):
    p = rng.standard_normal((5, 3))
    t = rng.standard_normal((5, 3))
    loss, grad = mse_loss(p, t)
    eps = 1e-6
    p2 = p.copy()
    p2[0, 0] += eps
    assert abs((mse_loss(p2, t)[0] - loss) / eps - grad[0, 0]) < 1e-5


def test_t_sigmoid_softens():
    z = np.array([2.0, -2.0])
    hard = t_sigmoid(z, 1.0)
    soft = t_sigmoid(z, 5.0)
    assert abs(soft[0] - 0.5) < abs(hard[0] - 0.5)
    with pytest.raises(ValueError):
        t_sigmoid(z, 0.0)


def test_binary_kl_zero_iff_equal(rng):
    p = rng.random((4, 4))
    assert np.allclose(binary_kl(p, p), 0.0)
    assert (binary_kl(p, np.clip(p + 0.1, 0, 1)) >= 0).all()


def test_kd_loss_zero_when_matching_teacher(rng):
    logits = rng.standard_normal((6, 8))
    loss, grad = kd_loss(logits, logits.copy(), temperature=2.0)
    assert loss < 1e-12
    assert np.allclose(grad, 0.0)


def test_kd_grad_pulls_toward_teacher():
    student = np.array([[0.0]])
    teacher = np.array([[4.0]])  # teacher more confident positive
    _, grad = kd_loss(student, teacher, temperature=2.0)
    assert grad[0, 0] < 0  # decrease loss by increasing student logit


def test_kd_bce_lambda_bounds(rng):
    s = rng.standard_normal((3, 4))
    t = rng.standard_normal((3, 4))
    y = (rng.random((3, 4)) > 0.5).astype(float)
    l0, g0 = kd_bce_loss(s, t, y, lam=0.0)
    lb, gb = bce_with_logits(s, y)
    assert abs(l0 - lb) < 1e-12 and np.allclose(g0, gb)
    l1, _ = kd_bce_loss(s, t, y, lam=1.0)
    lk, _ = kd_loss(s, t)
    assert abs(l1 - lk) < 1e-12
    with pytest.raises(ValueError):
        kd_bce_loss(s, t, y, lam=1.5)


def test_sgd_momentum_converges_quadratic():
    lin = Linear(1, 1, bias=False, rng=0)
    opt = SGD([lin.weight], lr=0.1, momentum=0.9)
    x = np.array([[1.0]])
    for _ in range(300):
        y = lin.forward(x)
        lin.zero_grad()
        lin.backward(2 * (y - 3.0))
        opt.step()
    assert abs(lin.weight.value[0, 0] - 3.0) < 1e-3


def test_adam_converges_faster_than_plain_sgd():
    def run(opt_cls, **kw):
        lin = Linear(4, 1, bias=False, rng=1)
        opt = opt_cls([lin.weight], **kw)
        rng = np.random.default_rng(0)
        x = rng.standard_normal((64, 4))
        w_true = np.array([[1.0, -2.0, 0.5, 3.0]])
        t = x @ w_true.T
        for _ in range(150):
            y = lin.forward(x)
            lin.zero_grad()
            lin.backward(2 * (y - t) / y.size)
            opt.step()
        return float(np.abs(lin.weight.value - w_true).max())

    assert run(Adam, lr=0.05) < 1e-2


def test_weight_decay_shrinks_weights():
    lin = Linear(2, 2, bias=False, rng=0)
    lin.weight.value[:] = 1.0
    opt = SGD([lin.weight], lr=0.1, weight_decay=0.5)
    lin.zero_grad()
    opt.step()  # gradient zero, only decay acts
    assert np.all(lin.weight.value < 1.0)


def test_clip_global_norm():
    lin = Linear(2, 2, bias=False, rng=0)
    lin.weight.grad[:] = 10.0
    pre = clip_global_norm([lin.weight], max_norm=1.0)
    assert pre > 1.0
    norm = np.sqrt((lin.weight.grad**2).sum())
    assert abs(norm - 1.0) < 1e-9
    # under the cap: untouched
    lin.weight.grad[:] = 0.01
    clip_global_norm([lin.weight], max_norm=1.0)
    assert np.allclose(lin.weight.grad, 0.01)
