"""Segmented address inputs (Sec. VI-A)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.data import AddressSegmenter


def test_segment_count_formula():
    seg = AddressSegmenter(page_bits=24, seg_bits=6)
    assert seg.n_addr_segments == 24 // 6 + 1  # ceil(p/c) + 1 (paper Sec. VI-A)
    seg2 = AddressSegmenter(page_bits=25, seg_bits=6)
    assert seg2.n_addr_segments == 5 + 1


def test_features_are_normalized(rng):
    seg = AddressSegmenter()
    ba = rng.integers(0, 1 << 30, size=100)
    feats = seg.segment_block_addresses(ba)
    assert feats.shape == (100, seg.n_addr_segments)
    assert feats.min() >= 0.0 and feats.max() <= 1.0


def test_pc_features_shape(rng):
    seg = AddressSegmenter(pc_bits=18, seg_bits=6)
    pcs = rng.integers(0, 1 << 18, size=50)
    feats = seg.segment_pcs(pcs)
    assert feats.shape == (50, 3)


def test_segmentation_preserves_block_index():
    seg = AddressSegmenter(seg_bits=6)
    ba = np.array([0b1010101_000111], dtype=np.int64)  # low 6 bits = block idx
    feats = seg.segment_block_addresses(ba)
    assert feats[0, 0] == pytest.approx((ba[0] & 63) / 63.0)


@given(ba=st.lists(st.integers(min_value=0, max_value=(1 << 30) - 1), min_size=1, max_size=20))
def test_desegment_inverts(ba):
    seg = AddressSegmenter(page_bits=24, seg_bits=6)
    arr = np.asarray(ba, dtype=np.int64)
    feats = seg.segment_block_addresses(arr)
    assert np.array_equal(seg.desegment_block_addresses(feats), arr)


def test_multidim_input(rng):
    seg = AddressSegmenter()
    windows = rng.integers(0, 1 << 28, size=(10, 4))
    feats = seg.segment_block_addresses(windows)
    assert feats.shape == (10, 4, seg.n_addr_segments)


def test_invalid_widths():
    with pytest.raises(ValueError):
        AddressSegmenter(page_bits=0)
    with pytest.raises(ValueError):
        AddressSegmenter(seg_bits=-1)
