"""Cross-module property-based invariants (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import ModelConfig
from repro.prefetch import tabular_model_latency, tabular_model_storage_bits
from repro.quantization import lookup_aggregate
from repro.sim import SimConfig, simulate
from repro.tabularization import TableConfig
from repro.traces import MemoryTrace
from repro.traces.generators import StreamPhase, compose_trace

MODEL = ModelConfig(layers=1, dim=32, heads=2, history_len=16, bitmap_size=256)


@settings(max_examples=30, deadline=None)
@given(
    k1=st.sampled_from([16, 64, 256]),
    k2=st.sampled_from([16, 64, 256]),
    c=st.sampled_from([1, 2, 4]),
)
def test_cost_model_monotone_in_k(k1, k2, c):
    """Latency and storage are monotone in K for fixed C (Fig. 10's premise)."""
    lo, hi = min(k1, k2), max(k1, k2)
    t_lo, t_hi = TableConfig.uniform(lo, c), TableConfig.uniform(hi, c)
    assert tabular_model_latency(MODEL, t_lo) <= tabular_model_latency(MODEL, t_hi)
    assert tabular_model_storage_bits(MODEL, t_lo) <= tabular_model_storage_bits(MODEL, t_hi)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=30),
    c=st.integers(min_value=1, max_value=4),
    k=st.integers(min_value=2, max_value=8),
    d_out=st.integers(min_value=1, max_value=6),
)
def test_lookup_aggregate_is_linear_in_table(n, c, k, d_out):
    """Aggregation is linear: lookup(a*T1 + T2) == a*lookup(T1) + lookup(T2)."""
    rng = np.random.default_rng(n * 100 + c * 10 + k)
    t1 = rng.standard_normal((c, k, d_out))
    t2 = rng.standard_normal((c, k, d_out))
    codes = rng.integers(0, k, size=(n, c))
    lhs = lookup_aggregate(2.5 * t1 + t2, codes)
    rhs = 2.5 * lookup_aggregate(t1, codes) + lookup_aggregate(t2, codes)
    assert np.allclose(lhs, rhs)


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(min_value=10, max_value=300),
    gap=st.integers(min_value=2, max_value=60),
)
def test_sim_conservation_and_monotone_cycles(n, gap):
    """hits + misses == accesses; cycles >= ideal front-end time."""
    tr = compose_trace(
        [(StreamPhase(0, 10**6), n)], seed=n, mean_instr_gap=float(gap)
    )
    r = simulate(tr, None, SimConfig())
    assert r.demand_hits + r.demand_misses == r.demand_accesses == n
    assert r.cycles >= r.instructions / 4.0 - 1e-6
    assert 0.0 < r.ipc <= 4.0 + 1e-9


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_trace_instruction_ids_strictly_positive_gaps(seed):
    tr = compose_trace([(StreamPhase(0, 1000), 50)], seed=seed)
    gaps = np.diff(np.concatenate([[0], tr.instr_ids]))
    assert (gaps >= 1).all()


@settings(max_examples=10, deadline=None)
@given(
    lat=st.integers(min_value=0, max_value=5000),
)
def test_prefetch_latency_never_increases_ipc_beyond_ideal(lat):
    """Adding predictor latency can only reduce (never increase) IPC."""
    from repro.prefetch import NextLinePrefetcher

    tr = compose_trace([(StreamPhase(0, 10**6), 1500)], seed=1, mean_instr_gap=20.0)
    ideal = NextLinePrefetcher(degree=4)
    ideal.latency_cycles = 0
    slow = NextLinePrefetcher(degree=4)
    slow.latency_cycles = lat
    r_ideal = simulate(tr, ideal)
    r_slow = simulate(tr, slow)
    assert r_slow.ipc <= r_ideal.ipc * 1.02  # small tolerance: eviction noise


def test_trace_slice_roundtrip():
    tr = compose_trace([(StreamPhase(0, 1000), 100)], seed=0, name="s")
    sl = tr.slice(10, 60)
    assert len(sl) == 50
    assert np.array_equal(sl.addrs, tr.addrs[10:60])
    assert sl.name == tr.name
