"""B=1 latency serving: sketch accounting, fast-path dispatch, row decode.

The latency-oriented serving path has three load-bearing pieces this suite
pins: the per-access latency sketch counts exactly one sample per delivered
answer (drain tail included), the B=1 flush really dispatches through the
single-query fast path (and counts it), and the allocation-light
:class:`~repro.prefetch.nn_prefetcher.SingleRowDecoder` is element-identical
to the batch :func:`~repro.prefetch.nn_prefetcher.decode_bitmap_probs`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.prefetch.nn_prefetcher import SingleRowDecoder, decode_bitmap_probs
from repro.runtime import as_streaming, serve, serve_interleaved


@pytest.fixture(scope="module")
def latency_trace(libquantum_traces):
    return libquantum_traces(1, 600, 77)[0]


# ---------------------------------------------------------------- B=1 sketch
def test_b1_sketch_counts_every_delivery(dart, latency_trace):
    """At B=1 every post-warmup access answers immediately: one timed sample
    per access, and the drain tail (which has nothing pending) adds none."""
    stream = as_streaming(dart, batch_size=1)
    agg, per, _ = serve_interleaved([stream], [latency_trace])
    assert per[0].accesses == len(latency_trace)
    assert per[0].extra["latency_count"] == len(latency_trace)
    assert agg.extra["latency_count"] == per[0].extra["latency_count"]
    assert per[0].p50_us > 0


def test_b1_drain_tail_stays_accounted(dart, latency_trace):
    """With B>1 the tail flush delivers pending answers and must be timed:
    sample count == accesses + 1 exactly when the drain delivered."""
    stream = as_streaming(dart, batch_size=32)
    # Stop mid-batch so the drain has work: the first history_len - 1
    # accesses are warmup (answered inline, never queued), so leave 5
    # queries pending past the last full batch.
    warmup = dart.config.history_len - 1
    cut = latency_trace.slice(0, warmup + 32 * 10 + 5)
    agg, per, _ = serve_interleaved([stream], [cut])
    assert per[0].extra["latency_count"] == len(cut) + 1


# ------------------------------------------------------------ fast dispatch
def test_b1_serving_uses_fast_path_every_flush(dart, latency_trace):
    stream = as_streaming(dart, batch_size=1)
    stats, lists = serve(stream, latency_trace, collect=True)
    assert stream.fast_path_flushes > 0
    # At B=1 there is never more than one pending query, so *every* predict
    # went through the fast path.
    assert stream.fast_path_flushes == stream.predict_calls
    assert lists == dart.prefetch_lists(latency_trace)


def test_b1_multistream_counts_fast_path(dart, latency_trace):
    ms = dart.multistream(batch_size=1)
    h = ms.stream()
    for i in range(200):
        h.ingest(int(latency_trace.pcs[i]), int(latency_trace.addrs[i]))
    h.flush()
    stats = ms.stats()
    assert stats["fast_path_flushes"] > 0
    assert stats["fast_path_flushes"] == stats["predict_calls"]


def test_b32_serving_never_uses_fast_path(dart, latency_trace):
    stream = as_streaming(dart, batch_size=32)
    serve(stream, latency_trace)
    # Full batches bypass the single-query path; only a k==1 drain could use
    # it, and this trace length leaves more than one pending at the tail.
    assert stream.fast_path_flushes <= 1


# ------------------------------------------------------------- row decoder
@pytest.mark.parametrize("decode", ["distance", "confidence"])
def test_single_row_decoder_matches_batch_decode(decode):
    rng = np.random.default_rng(2024)
    bitmap = 64
    for trial in range(50):
        threshold = float(rng.uniform(0.1, 0.9))
        max_degree = int(rng.integers(1, 6))
        n = int(rng.integers(1, 8))
        # Mix plateaus (ties!), exact-threshold values and empty rows.
        probs = rng.choice(
            [0.0, threshold, 0.3, 0.5, 0.7, 0.95], size=(n, bitmap)
        ) * rng.choice([0.0, 1.0], size=(n, bitmap), p=[0.3, 0.7])
        anchors = rng.integers(0, 2**40, size=n)
        want = decode_bitmap_probs(probs, anchors, threshold, max_degree, decode)
        dec = SingleRowDecoder(bitmap, threshold, max_degree, decode)
        got = [dec.decode1(probs[i], anchors[i]) for i in range(n)]
        assert got == want, f"trial {trial} diverged"


def test_single_row_decoder_rejects_unknown_policy():
    with pytest.raises(ValueError):
        SingleRowDecoder(64, 0.5, 2, "nope")


def test_single_row_decoder_empty_row():
    dec = SingleRowDecoder(64, 0.5, 2, "distance")
    assert dec.decode1(np.zeros(64), 1000) == []
