"""Finite-difference gradient verification for every nn module.

Each check perturbs parameters (and inputs) of a small module, compares the
analytic gradient of a scalar loss ``L = sum(forward(x) * G)`` against central
differences. These tests are the foundation the whole training stack rests on.
"""

import numpy as np
import pytest

from repro.nn import (
    LSTM,
    Dropout,
    LayerNorm,
    Linear,
    MultiHeadSelfAttention,
    ReLU,
    Sigmoid,
    TransformerEncoderLayer,
)
from repro.nn.transformer import FeedForward, MeanPool

EPS = 1e-6
TOL = 1e-5


def _check_param_grads(module, forward, rng):
    """Compare analytic parameter grads against central differences."""
    out = forward()
    g_out = rng.standard_normal(out.shape)
    module.zero_grad()
    module.backward(g_out)

    def loss():
        return float((forward() * g_out).sum())

    for name, p in module.named_parameters():
        flat = p.value.reshape(-1)
        grad_flat = p.grad.reshape(-1)
        idx = rng.choice(flat.size, size=min(10, flat.size), replace=False)
        for j in idx:
            orig = flat[j]
            flat[j] = orig + EPS
            lp = loss()
            flat[j] = orig - EPS
            lm = loss()
            flat[j] = orig
            num = (lp - lm) / (2 * EPS)
            assert abs(num - grad_flat[j]) < TOL * max(1.0, abs(num)), (
                f"param {name}[{j}]: analytic {grad_flat[j]:.8f} vs numeric {num:.8f}"
            )


def _check_input_grads(module, x, rng, forward=None):
    forward = forward or (lambda: module.forward(x))
    out = forward()
    g_out = rng.standard_normal(out.shape)
    module.zero_grad()
    g_in = module.backward(g_out)

    def loss():
        return float((forward() * g_out).sum())

    flat = x.reshape(-1)
    gflat = np.asarray(g_in).reshape(-1)
    idx = rng.choice(flat.size, size=min(10, flat.size), replace=False)
    for j in idx:
        orig = flat[j]
        flat[j] = orig + EPS
        lp = loss()
        flat[j] = orig - EPS
        lm = loss()
        flat[j] = orig
        num = (lp - lm) / (2 * EPS)
        assert abs(num - gflat[j]) < TOL * max(1.0, abs(num))


def test_linear_grads(rng):
    m = Linear(6, 4, rng=1)
    x = rng.standard_normal((3, 5, 6))
    _check_param_grads(m, lambda: m.forward(x), rng)
    _check_input_grads(m, x, rng)


def test_layernorm_grads(rng):
    m = LayerNorm(8)
    m.gamma.value[:] = rng.standard_normal(8)
    m.beta.value[:] = rng.standard_normal(8)
    x = rng.standard_normal((4, 3, 8))
    _check_param_grads(m, lambda: m.forward(x), rng)
    _check_input_grads(m, x, rng)


@pytest.mark.parametrize("mode", ["softmax", "sigmoid"])
def test_attention_grads(rng, mode):
    m = MultiHeadSelfAttention(8, 2, score_mode=mode, rng=2)
    x = rng.standard_normal((2, 4, 8))
    _check_param_grads(m, lambda: m.forward(x), rng)
    _check_input_grads(m, x, rng)


def test_encoder_layer_grads(rng):
    m = TransformerEncoderLayer(8, 2, 16, rng=3)
    x = rng.standard_normal((2, 4, 8))
    _check_param_grads(m, lambda: m.forward(x), rng)
    _check_input_grads(m, x, rng)


def test_ffn_grads(rng):
    m = FeedForward(6, 12, rng=4)
    # Shift inputs away from ReLU's kink so finite differences are valid.
    x = rng.standard_normal((3, 4, 6)) + 0.05
    _check_param_grads(m, lambda: m.forward(x), rng)


def test_lstm_grads(rng):
    m = LSTM(5, 7, rng=5)
    x = rng.standard_normal((2, 4, 5))
    _check_param_grads(m, lambda: m.forward(x), rng)
    _check_input_grads(m, x, rng)


def test_relu_sigmoid_meanpool_input_grads(rng):
    x = rng.standard_normal((3, 4, 5)) + 0.03
    for m in [ReLU(), Sigmoid(), MeanPool()]:
        _check_input_grads(m, x.copy(), rng)


def test_dropout_train_vs_eval(rng):
    m = Dropout(0.5, rng=0)
    x = np.ones((200, 10))
    m.train()
    y = m.forward(x)
    # Inverted dropout preserves expectation.
    assert abs(y.mean() - 1.0) < 0.15
    assert (y == 0).any()
    m.eval()
    assert np.array_equal(m.forward(x), x)


def test_dropout_backward_masks_gradient(rng):
    m = Dropout(0.4, rng=1)
    x = rng.standard_normal((50, 8))
    y = m.forward(x)
    g = m.backward(np.ones_like(y))
    assert np.array_equal(g == 0, y == 0)
