"""Logging helpers and failure-injection behaviour across modules."""

import numpy as np
import pytest

from repro.data import PreprocessConfig, build_dataset
from repro.nn import Linear
from repro.quantization import ProductQuantizer
from repro.sim import SimConfig
from repro.tabularization import TabularLinear
from repro.tabularization.attention_kernel import TabularAttention
from repro.traces import MemoryTrace
from repro.utils import log


def test_table_renders_and_prints(capsys):
    out = log.table("Title", ["a", "bb"], [[1, 22], [333, 4]])
    captured = capsys.readouterr().out
    assert "Title" in out and "333" in captured
    # aligned columns: header separator spans both columns
    assert "-+-" in out


def test_table_empty_rows():
    out = log.table("T", ["x"], [])
    assert "T" in out and "x" in out


def test_info_respects_verbosity(capsys):
    log.set_verbose(False)
    log.info("hidden")
    assert "hidden" not in capsys.readouterr().err
    log.set_verbose(True)
    log.info("shown")
    assert "shown" in capsys.readouterr().err
    log.set_verbose(False)


# ------------------------------------------------------------ failure modes
def test_linear_backward_before_forward_raises():
    lin = Linear(3, 2, rng=0)
    with pytest.raises(RuntimeError):
        lin.backward(np.zeros((1, 2)))


def test_pq_dim_mismatch_raises():
    pq = ProductQuantizer(8, 2, 4, rng=0).fit(np.random.default_rng(0).standard_normal((50, 8)))
    with pytest.raises(ValueError):
        pq.encode(np.zeros((5, 9)))


def test_tabular_linear_weight_dim_mismatch(rng):
    from repro.quantization import build_weight_table

    pq = ProductQuantizer(8, 2, 4, rng=0).fit(rng.standard_normal((50, 8)))
    with pytest.raises(ValueError):
        build_weight_table(pq, rng.standard_normal((3, 9)))


def test_attention_kernel_shape_mismatches(rng):
    q = rng.standard_normal((10, 4, 8))
    with pytest.raises(ValueError):
        TabularAttention.train(q, q[:5], q, 8, 2)
    with pytest.raises(ValueError):
        TabularAttention.train(q.reshape(10, 32), q.reshape(10, 32), q.reshape(10, 32), 8, 2)


def test_dataset_rejects_empty():
    with pytest.raises(ValueError):
        build_dataset(np.array([]), np.array([]), PreprocessConfig())


def test_trace_rejects_negative_instruction_steps():
    with pytest.raises(ValueError):
        MemoryTrace(np.array([10, 5]), np.array([0, 0]), np.array([0, 64]))


def test_simconfig_llc_shape():
    cfg = SimConfig(llc_capacity_bytes=1 << 20, llc_ways=16)
    llc = cfg.make_llc()
    assert llc.n_sets * llc.n_ways * 64 == 1 << 20


def test_nan_inputs_propagate_not_crash(rng):
    """NaNs should flow through (debuggable), not raise inside kernels."""
    lin = Linear(4, 2, rng=0)
    x = rng.standard_normal((10, 4))
    tab = TabularLinear.train(lin, x, 4, 2, rng=0)
    bad = x.copy()
    bad[0, 0] = np.nan
    out = tab.query(bad)
    assert out.shape == (10, 2)
