"""Sliding-window dataset assembly."""

import numpy as np
import pytest

from repro.data import PreprocessConfig, build_dataset, iterate_batches, train_test_split
from repro.utils.bits import block_address


def _toy_trace(n=200, seed=0):
    rng = np.random.default_rng(seed)
    addrs = (np.arange(n, dtype=np.int64) * 64) + (1 << 20)
    pcs = rng.integers(0x400, 0x500, size=n).astype(np.int64)
    return pcs, addrs


def test_shapes_and_lengths():
    pcs, addrs = _toy_trace(100)
    cfg = PreprocessConfig(history_len=8, window=4, delta_range=16)
    ds = build_dataset(pcs, addrs, cfg)
    assert len(ds) == 100 - 8 - 4 + 1
    seg = cfg.segmenter()
    assert ds.x_addr.shape == (len(ds), 8, seg.n_addr_segments)
    assert ds.x_pc.shape == (len(ds), 8, seg.n_pc_segments)
    assert ds.labels.shape == (len(ds), 32)


def test_anchor_alignment():
    """Sample i's anchor must be the last history element (block addr)."""
    pcs, addrs = _toy_trace(50)
    cfg = PreprocessConfig(history_len=4, window=2, delta_range=8)
    ds = build_dataset(pcs, addrs, cfg)
    ba = block_address(addrs)
    assert np.array_equal(ds.anchor_blocks, ba[3 : 3 + len(ds)])


def test_labels_for_unit_stream():
    pcs, addrs = _toy_trace(60)
    cfg = PreprocessConfig(history_len=4, window=3, delta_range=8)
    ds = build_dataset(pcs, addrs, cfg)
    # stride-1 block stream: every label has bits {+1,+2,+3}
    from repro.data import delta_to_bitmap_index

    bits = [delta_to_bitmap_index(d, 8) for d in (1, 2, 3)]
    assert np.allclose(ds.labels[:, bits], 1.0)
    assert ds.labels.sum() == len(ds) * 3


def test_max_samples_subsampling():
    pcs, addrs = _toy_trace(500)
    cfg = PreprocessConfig(history_len=8, window=4)
    ds = build_dataset(pcs, addrs, cfg, max_samples=50)
    assert len(ds) == 50


def test_too_short_trace_raises():
    pcs, addrs = _toy_trace(10)
    with pytest.raises(ValueError):
        build_dataset(pcs, addrs, PreprocessConfig(history_len=8, window=4))


def test_chronological_split():
    pcs, addrs = _toy_trace(200)
    ds = build_dataset(pcs, addrs, PreprocessConfig(history_len=4, window=2))
    tr, va = train_test_split(ds, 0.75)
    assert len(tr) == int(len(ds) * 0.75)
    assert len(tr) + len(va) == len(ds)
    # chronological: all train anchors precede val anchors positionally
    assert tr.anchor_blocks[-1] <= va.anchor_blocks[0]
    with pytest.raises(ValueError):
        train_test_split(ds, 1.5)


def test_iterate_batches_covers_everything_once():
    pcs, addrs = _toy_trace(100)
    ds = build_dataset(pcs, addrs, PreprocessConfig(history_len=4, window=2))
    seen = 0
    for xa, xp, y in iterate_batches(ds, 16, rng=0, shuffle=True):
        assert xa.shape[0] == xp.shape[0] == y.shape[0]
        seen += xa.shape[0]
    assert seen == len(ds)


def test_iterate_batches_shuffle_determinism():
    pcs, addrs = _toy_trace(80)
    ds = build_dataset(pcs, addrs, PreprocessConfig(history_len=4, window=2))
    b1 = next(iter(iterate_batches(ds, 8, rng=5)))
    b2 = next(iter(iterate_batches(ds, 8, rng=5)))
    assert np.array_equal(b1[0], b2[0])
