"""GRU: shapes, finite-difference gradients, and learning capacity."""

import numpy as np
import pytest

from repro.nn import GRU, SGD

EPS = 1e-6
TOL = 2e-5


def test_forward_shape_and_range():
    gru = GRU(4, 6, rng=0)
    x = np.random.default_rng(0).standard_normal((3, 5, 4))
    out = gru.forward(x)
    assert out.shape == (3, 5, 6)
    assert np.all(np.abs(out) <= 1.0)  # convex blend of tanh candidates


def test_backward_before_forward_raises():
    gru = GRU(2, 3)
    with pytest.raises(RuntimeError):
        gru.backward(np.zeros((1, 1, 3)))


def test_zero_input_zero_state_behaviour():
    gru = GRU(3, 4, rng=1)
    out = gru.forward(np.zeros((2, 3, 3)))
    # With zero bias and zero input, z = 0.5 and n = tanh(0) = 0, so h stays 0.
    np.testing.assert_allclose(out, 0.0, atol=1e-12)


def _finite_diff_check(gru, x, rng):
    out = gru.forward(x)
    g_out = rng.standard_normal(out.shape)
    gru.zero_grad()
    g_in = gru.backward(g_out)

    def loss():
        return float((gru.forward(x) * g_out).sum())

    # Parameter gradients.
    for name, p in gru.named_parameters():
        flat = p.value.reshape(-1)
        grad_flat = p.grad.reshape(-1)
        for j in rng.choice(flat.size, size=min(8, flat.size), replace=False):
            orig = flat[j]
            flat[j] = orig + EPS
            lp = loss()
            flat[j] = orig - EPS
            lm = loss()
            flat[j] = orig
            num = (lp - lm) / (2 * EPS)
            assert abs(num - grad_flat[j]) < TOL * max(1.0, abs(num)), (
                f"{name}[{j}]: analytic {grad_flat[j]:.8f} vs numeric {num:.8f}"
            )
    # Input gradients.
    flat_x = x.reshape(-1)
    flat_gin = g_in.reshape(-1)
    for j in rng.choice(flat_x.size, size=min(10, flat_x.size), replace=False):
        orig = flat_x[j]
        flat_x[j] = orig + EPS
        lp = loss()
        flat_x[j] = orig - EPS
        lm = loss()
        flat_x[j] = orig
        num = (lp - lm) / (2 * EPS)
        assert abs(num - flat_gin[j]) < TOL * max(1.0, abs(num))


def test_gradients_single_step():
    rng = np.random.default_rng(0)
    _finite_diff_check(GRU(3, 4, rng=2), rng.standard_normal((2, 1, 3)), rng)


def test_gradients_multi_step():
    rng = np.random.default_rng(1)
    _finite_diff_check(GRU(4, 5, rng=3), rng.standard_normal((2, 6, 4)), rng)


def test_gradient_accumulates_across_backwards():
    rng = np.random.default_rng(2)
    gru = GRU(2, 3, rng=0)
    x = rng.standard_normal((1, 3, 2))
    g = rng.standard_normal((1, 3, 3))
    gru.forward(x)
    gru.zero_grad()
    gru.backward(g)
    once = gru.w_x.grad.copy()
    gru.forward(x)
    gru.backward(g)
    np.testing.assert_allclose(gru.w_x.grad, 2 * once)


def test_learns_to_remember_first_token():
    """Task: output at the last step must equal the first input's sign —
    requires carrying state across the sequence (the gate mechanics)."""
    rng = np.random.default_rng(3)
    gru = GRU(1, 8, rng=4)
    from repro.nn import Linear

    head = Linear(8, 1, rng=5)
    opt = SGD(gru.parameters() + head.parameters(), lr=0.2, momentum=0.9)
    losses = []
    for _ in range(200):
        x = rng.choice([-1.0, 1.0], size=(16, 6, 1))
        y = x[:, 0, 0:1]
        seq = gru.forward(x)
        pred = head.forward(seq[:, -1])
        diff = pred - y
        loss = float((diff * diff).mean())
        losses.append(loss)
        opt.zero_grad()
        g = head.backward(2 * diff / diff.size)
        g_seq = np.zeros_like(seq)
        g_seq[:, -1] = g
        gru.backward(g_seq)
        opt.step()
    assert losses[-1] < 0.1 * losses[0]
    assert losses[-1] < 0.05


def test_parameter_count():
    gru = GRU(4, 8)
    h, d = 8, 4
    assert gru.num_parameters() == 3 * h * d + 3 * h * h + 2 * 3 * h
