"""Packed binary table export: container format and model round-trip."""

import json
import struct

import numpy as np
import pytest

from repro.tabularization import export_packed, import_packed, read_packed, write_packed
from repro.tabularization.export import MAGIC


def test_write_read_roundtrip(tmp_path):
    arrays = {
        "a/table": np.arange(24, dtype=np.float64).reshape(2, 3, 4),
        "b/meta": np.array([1, 2, 3], dtype=np.int64),
        "c/small": np.float32([[1.5, -2.5]]),
    }
    path = tmp_path / "tables.bin"
    total = write_packed(path, arrays, attrs={"k": 1})
    assert total == path.stat().st_size
    back, attrs = read_packed(path)
    assert attrs == {"k": 1}
    assert set(back) == set(arrays)
    for k in arrays:
        np.testing.assert_array_equal(back[k], arrays[k])
        assert back[k].dtype == arrays[k].dtype


def test_magic_and_header_parse(tmp_path):
    path = tmp_path / "t.bin"
    write_packed(path, {"x": np.zeros(4)})
    raw = path.read_bytes()
    assert raw[:8] == MAGIC
    (hlen,) = struct.unpack("<I", raw[8:12])
    doc = json.loads(raw[12 : 12 + hlen])
    assert doc["entries"][0]["name"] == "x"
    assert doc["entries"][0]["offset"] % 64 == 0  # alignment contract


def test_payload_offsets_are_absolute_and_aligned(tmp_path):
    path = tmp_path / "t.bin"
    arrays = {f"arr{i}": np.full(i + 1, float(i)) for i in range(5)}
    write_packed(path, arrays)
    raw = path.read_bytes()
    (hlen,) = struct.unpack("<I", raw[8:12])
    doc = json.loads(raw[12 : 12 + hlen])
    for e in doc["entries"]:
        assert e["offset"] % 64 == 0
        payload = raw[e["offset"] : e["offset"] + e["nbytes"]]
        arr = np.frombuffer(payload, dtype=e["dtype"]).reshape(e["shape"])
        np.testing.assert_array_equal(arr, arrays[e["name"]])


def test_rejects_bad_magic(tmp_path):
    path = tmp_path / "junk.bin"
    path.write_bytes(b"NOTATBL0" + b"\x00" * 100)
    with pytest.raises(ValueError, match="magic"):
        read_packed(path)


def test_rejects_unsupported_dtype(tmp_path):
    with pytest.raises(ValueError, match="not supported"):
        write_packed(tmp_path / "x.bin", {"c": np.array([1 + 2j])})


def test_export_import_model_roundtrip_float64(tmp_path, tabular_student, split_dataset):
    model, _ = tabular_student
    _, ds_val = split_dataset
    path = tmp_path / "model.bin"
    export_packed(model, path, float_dtype="float64")
    back = import_packed(path)
    a = model.predict_proba(ds_val.x_addr[:64], ds_val.x_pc[:64])
    b = back.predict_proba(ds_val.x_addr[:64], ds_val.x_pc[:64])
    np.testing.assert_allclose(a, b, atol=1e-12)  # bit-faithful at float64


def test_export_float32_smaller_and_close(tmp_path, tabular_student, split_dataset):
    model, _ = tabular_student
    _, ds_val = split_dataset
    p64 = tmp_path / "m64.bin"
    p32 = tmp_path / "m32.bin"
    n64 = export_packed(model, p64, float_dtype="float64")
    n32 = export_packed(model, p32, float_dtype="float32")
    assert n32 < 0.66 * n64
    back = import_packed(p32)
    a = model.predict_proba(ds_val.x_addr[:64], ds_val.x_pc[:64])
    b = back.predict_proba(ds_val.x_addr[:64], ds_val.x_pc[:64])
    assert np.abs(a - b).max() < 1e-3


def test_export_rejects_bad_dtype(tmp_path, tabular_student):
    model, _ = tabular_student
    with pytest.raises(ValueError):
        export_packed(model, tmp_path / "x.bin", float_dtype="float8")


def test_import_rejects_non_model_file(tmp_path):
    path = tmp_path / "x.bin"
    write_packed(path, {"x": np.zeros(3)}, attrs={"format": "other"})
    with pytest.raises(ValueError, match="tabular model"):
        import_packed(path)
