"""Module/Parameter registration, state dicts, Sequential composition."""

import numpy as np
import pytest

from repro.nn import Linear, Module, Parameter, ReLU, Sequential


def test_parameter_registration_and_counts():
    lin = Linear(4, 3, rng=0)
    names = dict(lin.named_parameters())
    assert set(names) == {"weight", "bias"}
    assert lin.num_parameters() == 4 * 3 + 3


def test_nested_module_registration():
    seq = Sequential(Linear(4, 8, rng=0), ReLU(), Linear(8, 2, rng=1))
    names = [n for n, _ in seq.named_parameters()]
    assert "layers/0/weight" in names and "layers/2/bias" in names
    assert len(seq) == 3
    assert isinstance(seq[1], ReLU)


def test_sequential_forward_backward_chain():
    rng = np.random.default_rng(0)
    seq = Sequential(Linear(4, 8, rng=0), ReLU(), Linear(8, 2, rng=1))
    x = rng.standard_normal((5, 4))
    y = seq.forward(x)
    assert y.shape == (5, 2)
    gx = seq.backward(np.ones_like(y))
    assert gx.shape == x.shape


def test_state_dict_roundtrip():
    a = Sequential(Linear(3, 3, rng=0), Linear(3, 3, rng=1))
    b = Sequential(Linear(3, 3, rng=2), Linear(3, 3, rng=3))
    b.load_state_dict(a.state_dict())
    x = np.random.default_rng(0).standard_normal((2, 3))
    assert np.allclose(a.forward(x), b.forward(x))


def test_state_dict_mismatch_raises():
    a = Linear(3, 3, rng=0)
    state = a.state_dict()
    state["spurious"] = np.zeros(1)
    with pytest.raises(KeyError):
        a.load_state_dict(state)
    bad = {"weight": np.zeros((2, 2)), "bias": np.zeros(3)}
    with pytest.raises(ValueError):
        a.load_state_dict(bad)


def test_zero_grad_clears_accumulation():
    lin = Linear(3, 2, rng=0)
    x = np.ones((4, 3))
    lin.forward(x)
    lin.backward(np.ones((4, 2)))
    assert np.abs(lin.weight.grad).sum() > 0
    lin.zero_grad()
    assert np.abs(lin.weight.grad).sum() == 0


def test_gradient_accumulates_across_backwards():
    lin = Linear(3, 2, rng=0)
    x = np.ones((4, 3))
    lin.forward(x)
    lin.backward(np.ones((4, 2)))
    g1 = lin.weight.grad.copy()
    lin.forward(x)
    lin.backward(np.ones((4, 2)))
    assert np.allclose(lin.weight.grad, 2 * g1)


def test_train_eval_propagates():
    seq = Sequential(Linear(2, 2, rng=0), ReLU())
    seq.eval()
    assert not seq.training and not seq[0].training
    seq.train()
    assert seq.training and seq[0].training


def test_parameter_name_autofill():
    p = Parameter(np.zeros(3))

    class M(Module):
        def __init__(self):
            super().__init__()
            self.my_param = p

    M()
    assert p.name == "my_param"
