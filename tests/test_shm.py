"""Property/fuzz tests for the zero-copy shared-memory table layer.

The contract under test: any state dict (and in particular any
``TableConfig`` geometry's artifact) round-trips through
:mod:`repro.tabularization.shm` bit-for-bit, the reconstructed views are
genuinely zero-copy **and** read-only, and validation failures carry named
errors instead of deep shape errors.
"""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.runtime.artifact import ModelArtifact
from repro.tabularization import TableConfig, tabularize_predictor
from repro.tabularization.shm import (
    attach_artifact,
    attach_state,
    publish_artifact,
    publish_state,
)

DTYPES = [np.float64, np.float32, np.int64, np.int32, np.uint8, np.bool_]


def random_state(rng: np.random.Generator) -> dict[str, np.ndarray]:
    """A random flat state dict: nested keys, mixed dtypes/shapes, empties."""
    state = {}
    for i in range(int(rng.integers(1, 12))):
        depth = int(rng.integers(1, 4))
        key = "/".join(f"k{int(rng.integers(0, 10))}" for _ in range(depth)) + f"/{i}"
        dtype = DTYPES[int(rng.integers(0, len(DTYPES)))]
        ndim = int(rng.integers(1, 4))
        shape = tuple(int(rng.integers(0, 9)) for _ in range(ndim))
        arr = (rng.normal(size=shape) * 100).astype(dtype)
        state[key] = arr
    return state


# ------------------------------------------------------------------ fuzzing
@pytest.mark.parametrize("seed", range(6))
def test_random_state_roundtrip(seed):
    rng = np.random.default_rng(1000 + seed)
    state = random_state(rng)
    with publish_state(state) as pub:
        att = attach_state(pub.name)
        views = att.state()
        assert sorted(views) == sorted(state)
        for key, arr in state.items():
            assert views[key].dtype == arr.dtype, key
            assert views[key].shape == arr.shape, key
            assert np.array_equal(views[key], arr), key
            assert not views[key].flags.writeable, key
        att.close()
    with pytest.raises(FileNotFoundError):  # owner exit unlinked the name
        attach_state(pub.name)


def test_views_are_read_only_and_zero_copy():
    state = {"t": np.arange(24, dtype=np.float64).reshape(4, 6)}
    with publish_state(state) as pub:
        att = attach_state(pub.name)
        view = att.state()["t"]
        with pytest.raises(ValueError):
            view[0, 0] = 1.0
        with pytest.raises(ValueError):
            view += 1.0
        # The reconstruction path relies on this: ascontiguousarray on an
        # attached view must NOT copy (otherwise W workers pay W copies).
        assert np.ascontiguousarray(view) is view
        assert np.shares_memory(view, np.asarray(view))
        del view
        att.close()


# ----------------------------------------------------------------- artifact
def test_artifact_roundtrip_bit_identical(tabular_student, small_dataset):
    tab, _ = tabular_student
    artifact = ModelArtifact(tab, version=7, metadata={"trained_on": "fixture"})
    with publish_artifact(artifact) as pub:
        got, tables = attach_artifact(pub.name)
        assert got.version == 7
        assert got.metadata["trained_on"] == "fixture"
        assert got.config_hash == artifact.config_hash
        x_addr, x_pc = small_dataset.x_addr[:32], small_dataset.x_pc[:32]
        want = tab.predict_proba(x_addr, x_pc, batch_size=16)
        have = got.model.predict_proba(x_addr, x_pc, batch_size=16)
        assert np.array_equal(want, have)
        # Kernel tables are views straight into the segment: read-only.
        assert not got.model.addr_table.table.flags.writeable
        assert not got.model.layers[0].msa.attn.qk_table.flags.writeable
        del got, have
        tables.close()


@pytest.mark.parametrize("seed", [0, 1])
def test_random_table_geometries_roundtrip(seed, trained_student, split_dataset):
    """Non-uniform, randomly drawn TableConfig geometries survive the trip."""
    rng = np.random.default_rng(7000 + seed)
    ds_train, _ = split_dataset
    ks = [8, 16, 32]
    tc = TableConfig(
        k_input=int(rng.choice(ks)), c_input=int(rng.choice([1, 2])),
        k_attn=int(rng.choice(ks)), c_attn=int(rng.choice([1, 2])),
        k_ffn=int(rng.choice(ks)), c_ffn=int(rng.choice([1, 2, 4])),
        k_output=int(rng.choice(ks)), c_output=int(rng.choice([1, 2])),
        encoder="hash" if seed % 2 else "exact",
    )
    model, _ = tabularize_predictor(
        trained_student, ds_train.x_addr[:256], ds_train.x_pc[:256], tc,
        fine_tune=False, rng=seed,
    )
    with publish_artifact(ModelArtifact(model)) as pub:
        got, tables = attach_artifact(pub.name)
        assert got.table_config == tc
        x_addr, x_pc = ds_train.x_addr[:16], ds_train.x_pc[:16]
        assert np.array_equal(
            model.predict_proba(x_addr, x_pc, batch_size=8),
            got.model.predict_proba(x_addr, x_pc, batch_size=8),
        )
        del got
        tables.close()


# --------------------------------------------------------------- validation
def test_attach_rejects_foreign_segment():
    shm = shared_memory.SharedMemory(create=True, size=256)
    try:
        shm.buf[:8] = b"NOTDART!"
        with pytest.raises(ValueError, match="bad magic"):
            attach_state(shm.name)
    finally:
        shm.close()
        shm.unlink()


def test_attach_rejects_truncated_manifest():
    shm = shared_memory.SharedMemory(create=True, size=64)
    try:
        from repro.tabularization.shm import MAGIC

        shm.buf[:8] = MAGIC
        shm.buf[8:16] = (1 << 20).to_bytes(8, "little")  # absurd manifest len
        with pytest.raises(ValueError, match="truncated"):
            attach_state(shm.name)
    finally:
        shm.close()
        shm.unlink()


def test_attach_artifact_requires_serialization_header():
    # A structurally valid segment that is not a model blob must fail with
    # the serialization layer's own named error, not a KeyError.
    with publish_state({"some/array": np.zeros(3)}) as pub:
        with pytest.raises(ValueError, match="format/version"):
            attach_artifact(pub.name)


def test_attach_artifact_rejects_tampered_config(tabular_student):
    tab, _ = tabular_student
    state = ModelArtifact(tab).state()
    state["format/config_hash"] = np.array([12345], dtype=np.int64)
    with publish_state(state) as pub:
        with pytest.raises(ValueError, match="hash"):
            attach_artifact(pub.name)
