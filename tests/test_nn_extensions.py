"""NN substrate extensions: Embedding, learned positions, GELU/Tanh,
cross-entropy, LR schedulers — gradients verified by finite differences."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (
    GELU,
    SGD,
    Adam,
    CosineAnnealingLR,
    Embedding,
    ExponentialLR,
    LearnedPositionalEmbedding,
    StepLR,
    Tanh,
    WarmupCosineLR,
    cross_entropy_with_logits,
)
from repro.nn import functional as F

EPS = 1e-6
TOL = 1e-5


def _num_grad(fn, arr, idx):
    flat = arr.reshape(-1)
    orig = flat[idx]
    flat[idx] = orig + EPS
    lp = fn()
    flat[idx] = orig - EPS
    lm = fn()
    flat[idx] = orig
    return (lp - lm) / (2 * EPS)


# --------------------------------------------------------------- Embedding
def test_embedding_forward_shape_and_rows():
    emb = Embedding(10, 4, rng=0)
    idx = np.array([[1, 3], [3, 9]])
    out = emb.forward(idx)
    assert out.shape == (2, 2, 4)
    np.testing.assert_array_equal(out[0, 1], out[1, 0])  # same row 3


def test_embedding_rejects_bad_indices():
    emb = Embedding(4, 2)
    with pytest.raises(IndexError):
        emb.forward(np.array([4]))
    with pytest.raises(IndexError):
        emb.forward(np.array([-1]))
    with pytest.raises(TypeError):
        emb.forward(np.array([0.5]))
    with pytest.raises(ValueError):
        Embedding(0, 2)


def test_embedding_gradient_accumulates_repeats():
    """Repeated indices must sum their gradients (np.add.at semantics)."""
    emb = Embedding(5, 3, rng=1)
    idx = np.array([2, 2, 2])
    emb.forward(idx)
    g = np.ones((3, 3))
    emb.zero_grad()
    emb.backward(g)
    np.testing.assert_allclose(emb.weight.grad[2], 3.0 * np.ones(3))
    np.testing.assert_allclose(emb.weight.grad[0], 0.0)


def test_embedding_finite_difference():
    rng = np.random.default_rng(0)
    emb = Embedding(8, 5, rng=2)
    idx = rng.integers(0, 8, size=(3, 4))
    g_out = rng.standard_normal((3, 4, 5))

    def loss():
        return float((emb.forward(idx) * g_out).sum())

    emb.forward(idx)
    emb.zero_grad()
    emb.backward(g_out)
    flat_grad = emb.weight.grad.reshape(-1)
    for j in rng.choice(emb.weight.value.size, size=10, replace=False):
        num = _num_grad(loss, emb.weight.value, j)
        assert abs(num - flat_grad[j]) < TOL * max(1.0, abs(num))


# ------------------------------------------------------- learned positions
def test_learned_positions_add_and_shape():
    pe = LearnedPositionalEmbedding(6, 3, rng=0)
    x = np.zeros((2, 4, 3))
    out = pe.forward(x)
    np.testing.assert_allclose(out[0], pe.weight.value[:4])
    np.testing.assert_allclose(out[0], out[1])


def test_learned_positions_length_check():
    pe = LearnedPositionalEmbedding(4, 3)
    with pytest.raises(ValueError):
        pe.forward(np.zeros((1, 5, 3)))
    with pytest.raises(ValueError):
        LearnedPositionalEmbedding(0, 3)


def test_learned_positions_finite_difference():
    rng = np.random.default_rng(1)
    pe = LearnedPositionalEmbedding(6, 4, rng=3)
    x = rng.standard_normal((2, 5, 4))
    g_out = rng.standard_normal((2, 5, 4))

    def loss():
        return float((pe.forward(x) * g_out).sum())

    pe.forward(x)
    pe.zero_grad()
    g_in = pe.backward(g_out)
    np.testing.assert_allclose(g_in, g_out)  # additive: identity to input
    flat_grad = pe.weight.grad.reshape(-1)
    for j in rng.choice(pe.weight.value.size, size=10, replace=False):
        num = _num_grad(loss, pe.weight.value, j)
        assert abs(num - flat_grad[j]) < TOL * max(1.0, abs(num))


# ------------------------------------------------------------- activations
@pytest.mark.parametrize("act_cls", [GELU, Tanh])
def test_activation_input_gradient(act_cls):
    rng = np.random.default_rng(2)
    act = act_cls()
    x = rng.standard_normal((3, 4))
    g_out = rng.standard_normal((3, 4))
    act.forward(x)
    g_in = act.backward(g_out)

    def loss():
        return float((act.forward(x) * g_out).sum())

    for j in range(x.size):
        num = _num_grad(loss, x, j)
        assert abs(num - g_in.reshape(-1)[j]) < 1e-4 * max(1.0, abs(num))


def test_gelu_matches_definition_at_zero_and_large_x():
    g = GELU()
    assert g.forward(np.array([0.0]))[0] == 0.0
    np.testing.assert_allclose(g.forward(np.array([10.0]))[0], 10.0, rtol=1e-6)
    np.testing.assert_allclose(g.forward(np.array([-10.0]))[0], 0.0, atol=1e-6)


def test_tanh_range():
    t = Tanh()
    out = t.forward(np.linspace(-5, 5, 11))
    assert np.all(np.abs(out) < 1.0)


# ----------------------------------------------------------- cross-entropy
def test_cross_entropy_perfect_prediction_low_loss():
    logits = np.array([[10.0, -10.0], [-10.0, 10.0]])
    loss, _ = cross_entropy_with_logits(logits, np.array([0, 1]))
    assert loss < 1e-4


def test_cross_entropy_uniform_logits():
    logits = np.zeros((4, 8))
    loss, grad = cross_entropy_with_logits(logits, np.zeros(4, dtype=int))
    np.testing.assert_allclose(loss, np.log(8))
    assert grad.shape == (4, 8)


def test_cross_entropy_validation():
    with pytest.raises(ValueError):
        cross_entropy_with_logits(np.zeros((2, 3, 4)), np.zeros(2, dtype=int))
    with pytest.raises(ValueError):
        cross_entropy_with_logits(np.zeros((2, 3)), np.zeros(3, dtype=int))
    with pytest.raises(IndexError):
        cross_entropy_with_logits(np.zeros((2, 3)), np.array([0, 3]))


def test_cross_entropy_gradient_finite_difference():
    rng = np.random.default_rng(3)
    z = rng.standard_normal((5, 7))
    t = rng.integers(0, 7, size=5)
    _, grad = cross_entropy_with_logits(z, t)

    def loss():
        return cross_entropy_with_logits(z, t)[0]

    for j in rng.choice(z.size, size=12, replace=False):
        num = _num_grad(loss, z, j)
        assert abs(num - grad.reshape(-1)[j]) < 1e-5 * max(1.0, abs(num))


def test_cross_entropy_grad_sums_to_zero_per_row():
    rng = np.random.default_rng(4)
    z = rng.standard_normal((6, 4))
    _, grad = cross_entropy_with_logits(z, rng.integers(0, 4, size=6))
    np.testing.assert_allclose(grad.sum(axis=1), 0.0, atol=1e-12)


# -------------------------------------------------------------- schedulers
def _opt():
    from repro.nn import Parameter

    return SGD([Parameter(np.zeros(1))], lr=1.0)


def test_step_lr_decays_in_steps():
    sch = StepLR(_opt(), step_size=3, gamma=0.1)
    lrs = [sch.step() for _ in range(6)]
    assert lrs[0] == lrs[1] == 1.0
    assert lrs[2] == pytest.approx(0.1)
    assert lrs[5] == pytest.approx(0.01)


def test_exponential_lr():
    sch = ExponentialLR(_opt(), gamma=0.5)
    assert sch.step() == pytest.approx(0.5)
    assert sch.step() == pytest.approx(0.25)


def test_cosine_annealing_endpoints():
    sch = CosineAnnealingLR(_opt(), t_max=10, min_lr=0.1)
    lrs = [sch.step() for _ in range(12)]
    assert lrs[-1] == pytest.approx(0.1)  # clamps at min after t_max
    assert all(a >= b - 1e-12 for a, b in zip(lrs, lrs[1:]))  # monotone decay


def test_warmup_cosine_ramps_then_decays():
    sch = WarmupCosineLR(_opt(), warmup=4, t_max=12, min_lr=0.0)
    lrs = [sch.step() for _ in range(12)]
    assert lrs[0] == pytest.approx(0.25)
    assert lrs[3] == pytest.approx(1.0)  # end of warmup
    assert max(lrs) == pytest.approx(1.0)
    assert lrs[-1] == pytest.approx(0.0, abs=1e-12)


def test_scheduler_validation():
    with pytest.raises(ValueError):
        StepLR(_opt(), step_size=0)
    with pytest.raises(ValueError):
        CosineAnnealingLR(_opt(), t_max=0)
    with pytest.raises(ValueError):
        WarmupCosineLR(_opt(), warmup=10, t_max=5)


def test_scheduler_drives_optimizer_lr():
    opt = _opt()
    sch = ExponentialLR(opt, gamma=0.9)
    sch.step()
    assert opt.lr == pytest.approx(0.9)
    assert sch.current_lr == opt.lr


def test_scheduler_works_with_adam():
    from repro.nn import Parameter

    p = Parameter(np.ones(3))
    opt = Adam([p], lr=0.01)
    sch = CosineAnnealingLR(opt, t_max=5)
    p.grad[:] = 1.0
    for _ in range(5):
        opt.step()
        sch.step()
    assert opt.lr == pytest.approx(0.0, abs=1e-12)


# -------------------------------------------------------------- properties
@settings(max_examples=20, deadline=None)
@given(st.integers(2, 50), st.integers(2, 10))
def test_property_softmax_rows_sum_to_one(n, c):
    rng = np.random.default_rng(n * 100 + c)
    z = rng.standard_normal((n, c)) * 10
    s = F.softmax(z, axis=1)
    np.testing.assert_allclose(s.sum(axis=1), 1.0, atol=1e-12)
    assert np.all(s >= 0)


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 40))
def test_property_cross_entropy_nonnegative(n):
    rng = np.random.default_rng(n)
    z = rng.standard_normal((n, 5)) * 5
    t = rng.integers(0, 5, size=n)
    loss, _ = cross_entropy_with_logits(z, t)
    assert loss >= 0.0
