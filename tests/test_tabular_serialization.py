"""Persistence round-trips for PQ, kernels and the full table hierarchy."""

import numpy as np
import pytest

from repro.nn.linear import Linear
from repro.quantization import ProductQuantizer
from repro.tabularization import (
    TabularAttention,
    TabularLinear,
    load_tabular_model,
    save_tabular_model,
)
from repro.tabularization.serialization import (
    attention_from_state,
    attention_state,
    linear_from_state,
    linear_state,
    pq_from_state,
    pq_state,
)


@pytest.mark.parametrize("encoder", ["exact", "hash"])
def test_pq_roundtrip(rng, encoder):
    x = rng.standard_normal((300, 8))
    pq = ProductQuantizer(8, 2, 16, encoder=encoder, rng=0).fit(x)
    state = pq_state(pq, "p")
    pq2 = pq_from_state(state, "p")
    probe = rng.standard_normal((40, 8))
    assert np.array_equal(pq.encode(probe), pq2.encode(probe))
    assert np.allclose(pq.prototypes, pq2.prototypes)


def test_pq_unfitted_raises():
    with pytest.raises(RuntimeError):
        pq_state(ProductQuantizer(8, 2, 4), "p")


def test_linear_kernel_roundtrip(rng):
    lin = Linear(10, 4, rng=0)
    x = rng.standard_normal((400, 10))
    tab = TabularLinear.train(lin, x, 16, 2, rng=1)
    tab2 = linear_from_state(linear_state(tab, "L"), "L")
    probe = rng.standard_normal((20, 10))
    assert np.allclose(tab.query(probe), tab2.query(probe))
    assert tab2.latency_cycles() == tab.latency_cycles()


def test_attention_kernel_roundtrip(rng):
    q = rng.standard_normal((60, 8, 8))
    kern = TabularAttention.train(q, q + 0.1, q - 0.1, 16, 2, rng=0)
    kern2 = attention_from_state(attention_state(kern, "A"), "A")
    out1 = kern.query(q, q + 0.1, q - 0.1)
    out2 = kern2.query(q, q + 0.1, q - 0.1)
    assert np.allclose(out1, out2)


def test_full_model_roundtrip(tabular_student, split_dataset, tmp_path):
    tab, _ = tabular_student
    _, ds_val = split_dataset
    path = tmp_path / "dart_tables"
    save_tabular_model(tab, path)
    loaded = load_tabular_model(path)
    xa, xp = ds_val.x_addr[:12], ds_val.x_pc[:12]
    assert np.allclose(tab.query(xa, xp), loaded.query(xa, xp))
    assert loaded.latency_cycles() == tab.latency_cycles()
    assert loaded.storage_bytes() == tab.storage_bytes()
    assert loaded.model_config == tab.model_config
    assert loaded.table_config == tab.table_config


def test_loaded_model_drives_prefetcher(tabular_student, small_trace, preprocess_config, tmp_path):
    from repro.prefetch import DARTPrefetcher

    tab, _ = tabular_student
    path = tmp_path / "t"
    save_tabular_model(tab, path)
    loaded = load_tabular_model(path)
    pf1 = DARTPrefetcher(tab, preprocess_config)
    pf2 = DARTPrefetcher(loaded, preprocess_config)
    l1 = pf1.prefetch_lists(small_trace.slice(0, 800))
    l2 = pf2.prefetch_lists(small_trace.slice(0, 800))
    assert l1 == l2
