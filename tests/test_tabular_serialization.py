"""Persistence round-trips for PQ, kernels and the full table hierarchy."""

import numpy as np
import pytest

from repro.nn.linear import Linear
from repro.quantization import ProductQuantizer
from repro.tabularization import (
    TabularAttention,
    TabularLinear,
    load_tabular_model,
    save_tabular_model,
)
from repro.tabularization.serialization import (
    attention_from_state,
    attention_state,
    linear_from_state,
    linear_state,
    pq_from_state,
    pq_state,
)


@pytest.mark.parametrize("encoder", ["exact", "hash"])
def test_pq_roundtrip(rng, encoder):
    x = rng.standard_normal((300, 8))
    pq = ProductQuantizer(8, 2, 16, encoder=encoder, rng=0).fit(x)
    state = pq_state(pq, "p")
    pq2 = pq_from_state(state, "p")
    probe = rng.standard_normal((40, 8))
    assert np.array_equal(pq.encode(probe), pq2.encode(probe))
    assert np.allclose(pq.prototypes, pq2.prototypes)


def test_pq_unfitted_raises():
    with pytest.raises(RuntimeError):
        pq_state(ProductQuantizer(8, 2, 4), "p")


def test_linear_kernel_roundtrip(rng):
    lin = Linear(10, 4, rng=0)
    x = rng.standard_normal((400, 10))
    tab = TabularLinear.train(lin, x, 16, 2, rng=1)
    tab2 = linear_from_state(linear_state(tab, "L"), "L")
    probe = rng.standard_normal((20, 10))
    assert np.allclose(tab.query(probe), tab2.query(probe))
    assert tab2.latency_cycles() == tab.latency_cycles()


def test_attention_kernel_roundtrip(rng):
    q = rng.standard_normal((60, 8, 8))
    kern = TabularAttention.train(q, q + 0.1, q - 0.1, 16, 2, rng=0)
    kern2 = attention_from_state(attention_state(kern, "A"), "A")
    out1 = kern.query(q, q + 0.1, q - 0.1)
    out2 = kern2.query(q, q + 0.1, q - 0.1)
    assert np.allclose(out1, out2)


def test_full_model_roundtrip(tabular_student, split_dataset, tmp_path):
    tab, _ = tabular_student
    _, ds_val = split_dataset
    path = tmp_path / "dart_tables"
    save_tabular_model(tab, path)
    loaded = load_tabular_model(path)
    xa, xp = ds_val.x_addr[:12], ds_val.x_pc[:12]
    assert np.allclose(tab.query(xa, xp), loaded.query(xa, xp))
    assert loaded.latency_cycles() == tab.latency_cycles()
    assert loaded.storage_bytes() == tab.storage_bytes()
    assert loaded.model_config == tab.model_config
    assert loaded.table_config == tab.table_config


def test_loaded_model_drives_prefetcher(tabular_student, small_trace, preprocess_config, tmp_path):
    from repro.prefetch import DARTPrefetcher

    tab, _ = tabular_student
    path = tmp_path / "t"
    save_tabular_model(tab, path)
    loaded = load_tabular_model(path)
    pf1 = DARTPrefetcher(tab, preprocess_config)
    pf2 = DARTPrefetcher(loaded, preprocess_config)
    l1 = pf1.prefetch_lists(small_trace.slice(0, 800))
    l2 = pf2.prefetch_lists(small_trace.slice(0, 800))
    assert l1 == l2


# ------------------------------------------------- hash / non-uniform configs
@pytest.fixture(scope="module")
def hash_nonuniform_model(trained_student, split_dataset):
    """Full model with the hash encoder and per-op table sizes that differ."""
    from repro.tabularization import TableConfig, tabularize_predictor

    ds_train, _ = split_dataset
    config = TableConfig(
        k_input=16, c_input=2, k_attn=8, c_attn=1,
        k_ffn=16, c_ffn=2, k_output=32, c_output=2,
        encoder="hash", data_bits=16,
    )
    model, _ = tabularize_predictor(
        trained_student, ds_train.x_addr, ds_train.x_pc, config,
        fine_tune=True, rng=3,
    )
    return model


def test_hash_nonuniform_roundtrip(hash_nonuniform_model, split_dataset, tmp_path):
    """Hash-tree splits/thresholds and per-op sizes survive the round trip."""
    model = hash_nonuniform_model
    _, ds_val = split_dataset
    path = tmp_path / "hash_tables"
    save_tabular_model(model, path)
    loaded = load_tabular_model(path)
    xa, xp = ds_val.x_addr[:16], ds_val.x_pc[:16]
    assert np.array_equal(model.query(xa, xp), loaded.query(xa, xp))
    assert loaded.table_config == model.table_config
    assert loaded.table_config.encoder == "hash"
    # per-op sizes really are non-uniform and preserved
    tc = loaded.table_config
    assert (tc.k_input, tc.k_attn, tc.k_output) == (16, 8, 32)
    # the rebuilt hash trees encode identically (depths, dims, thresholds)
    pq0, pq1 = model.addr_table.pq, loaded.addr_table.pq
    probe = ds_val.x_addr.reshape(-1, ds_val.x_addr.shape[2])[:64]
    assert np.array_equal(pq0.encode(probe), pq1.encode(probe))
    for t0, t1 in zip(pq0._hash_trees, pq1._hash_trees):
        assert t0.depth == t1.depth
        for lvl in range(t0.depth):
            assert np.array_equal(t0.split_dims[lvl], t1.split_dims[lvl])
            assert np.array_equal(t0.thresholds[lvl], t1.thresholds[lvl])


def test_hash_nonuniform_packed_roundtrip(hash_nonuniform_model, split_dataset, tmp_path):
    from repro.tabularization import export_packed, import_packed

    model = hash_nonuniform_model
    _, ds_val = split_dataset
    path = tmp_path / "hash.bin"
    export_packed(model, path, float_dtype="float64")
    loaded = import_packed(path)
    xa, xp = ds_val.x_addr[:8], ds_val.x_pc[:8]
    assert np.array_equal(model.query(xa, xp), loaded.query(xa, xp))


# ----------------------------------------------------- format header checks
def _state_of(model):
    from repro.tabularization.serialization import model_state

    return model_state(model)


def test_unversioned_blob_fails_clearly(tabular_student):
    from repro.tabularization.serialization import model_from_state

    tab, _ = tabular_student
    state = _state_of(tab)
    del state["format/version"]
    with pytest.raises(ValueError, match="format/version"):
        model_from_state(state)


def test_future_format_version_fails_clearly(tabular_student):
    from repro.tabularization.serialization import FORMAT_VERSION, model_from_state

    tab, _ = tabular_student
    state = _state_of(tab)
    state["format/version"] = np.array([FORMAT_VERSION + 1], dtype=np.int64)
    with pytest.raises(ValueError, match="not supported"):
        model_from_state(state)


def test_config_hash_mismatch_fails_clearly(tabular_student):
    from repro.tabularization.serialization import model_from_state

    tab, _ = tabular_student
    state = _state_of(tab)
    state["format/config_hash"] = state["format/config_hash"] + 1
    with pytest.raises(ValueError, match="config hash"):
        model_from_state(state)


def test_truncated_blob_fails_before_deep_reconstruction(tabular_student):
    from repro.tabularization.serialization import model_from_state

    tab, _ = tabular_student
    state = _state_of(tab)
    # Drop a kernel array: previously this died with a KeyError/shape error
    # deep inside pq_from_state; now the manifest check names the problem.
    del state["enc0/qkv/table"]
    with pytest.raises(ValueError, match="missing"):
        model_from_state(state)


def test_config_fingerprint_distinguishes_configs():
    from repro.models.config import ModelConfig
    from repro.tabularization import TableConfig, config_fingerprint

    mc = ModelConfig(layers=1, dim=16, heads=2, history_len=8, bitmap_size=64)
    tc1 = TableConfig.uniform(32, 2)
    tc2 = TableConfig.uniform(32, 2, encoder="hash")
    assert config_fingerprint(mc, tc1) == config_fingerprint(mc, tc1)
    assert config_fingerprint(mc, tc1) != config_fingerprint(mc, tc2)
    assert config_fingerprint(mc, tc1) < 2**63  # fits the int64 container


# ------------------------------------------------------------ model artifact
def test_artifact_roundtrip_with_metadata(tabular_student, split_dataset, tmp_path):
    from repro.runtime import ModelArtifact

    tab, _ = tabular_student
    _, ds_val = split_dataset
    art = ModelArtifact(tab, version=5, metadata={"trained_on": "libquantum",
                                                  "f1": {"tabular": 0.81}})
    path = tmp_path / "artifact"
    art.save(path)
    loaded = ModelArtifact.load(path)
    assert loaded.version == 5
    assert loaded.metadata == art.metadata
    assert loaded.config_hash == art.config_hash
    xa, xp = ds_val.x_addr[:8], ds_val.x_pc[:8]
    assert np.allclose(loaded.model.query(xa, xp), tab.query(xa, xp))
    desc = loaded.describe()
    assert desc["version"] == 5 and desc["meta.trained_on"] == "libquantum"


def test_plain_blob_loads_as_v1_artifact(tabular_student, tmp_path):
    from repro.runtime import ModelArtifact

    tab, _ = tabular_student
    path = tmp_path / "plain"
    save_tabular_model(tab, path)
    loaded = ModelArtifact.load(path)
    assert loaded.version == 1
    assert loaded.metadata == {}


def test_artifact_blob_loads_as_plain_model(tabular_student, tmp_path):
    from repro.runtime import ModelArtifact

    tab, _ = tabular_student
    path = tmp_path / "art"
    ModelArtifact(tab, version=2, metadata={"x": 1}).save(path)
    loaded = load_tabular_model(path)  # artifact keys are ignored
    assert loaded.table_config == tab.table_config


def test_artifact_successor_lineage(tabular_student):
    from repro.runtime import ModelArtifact

    tab, _ = tabular_student
    art = ModelArtifact(tab, version=1, metadata={"trained_on": "x"})
    nxt = art.successor(tab, refit_reason="features")
    assert nxt.version == 2
    assert nxt.metadata["parent_version"] == 1
    assert nxt.metadata["refit_reason"] == "features"
    assert nxt.metadata["trained_on"] == "x"  # inherited


def test_artifact_successor_rejects_geometry_change(tabular_student, split_dataset,
                                                    trained_student):
    from repro.models.config import ModelConfig
    from repro.runtime import ModelArtifact
    from repro.tabularization.tabular_model import TabularAttentionPredictor

    tab, _ = tabular_student
    art = ModelArtifact(tab)

    class Fake:
        model_config = ModelConfig(layers=1, dim=16, heads=2, history_len=8,
                                   bitmap_size=tab.model_config.bitmap_size * 2)

    with pytest.raises(ValueError, match="geometry"):
        art.successor(Fake())


def test_packed_export_embeds_artifact_info(tabular_student, tmp_path):
    from repro.runtime import ModelArtifact
    from repro.tabularization import export_packed, packed_info

    tab, _ = tabular_student
    art = ModelArtifact(tab, version=9, metadata={"trained_on": "demo"})
    path = tmp_path / "deploy.bin"
    export_packed(art, path)
    info = packed_info(path)
    assert info["attrs"]["artifact"]["version"] == 9
    assert info["attrs"]["artifact"]["metadata"]["trained_on"] == "demo"
    assert info["attrs"]["config_hash"] == art.config_hash
    assert info["entries"] > 0 and info["payload_bytes"] > 0
