"""Trace interchange formats (CSV / text, gzip) and the Pareto frontier."""

import numpy as np
import pytest

from repro.prefetch import TableConfigurator
from repro.traces import (
    MemoryTrace,
    load_any,
    load_csv,
    load_text,
    make_workload,
    save_csv,
    save_text,
)


def _trace(n=50, seed=0):
    rng = np.random.default_rng(seed)
    return MemoryTrace(
        np.cumsum(rng.integers(1, 20, size=n)),
        rng.integers(0, 2**40, size=n),
        rng.integers(0, 2**48, size=n),
        name="t",
    )


# --------------------------------------------------------------------- CSV
def test_csv_roundtrip(tmp_path):
    tr = _trace()
    path = tmp_path / "t.csv"
    save_csv(tr, path)
    back = load_csv(path)
    np.testing.assert_array_equal(back.instr_ids, tr.instr_ids)
    np.testing.assert_array_equal(back.pcs, tr.pcs)
    np.testing.assert_array_equal(back.addrs, tr.addrs)


def test_csv_roundtrip_decimal(tmp_path):
    tr = _trace(seed=1)
    path = tmp_path / "t.csv"
    save_csv(tr, path, hex_addrs=False)
    back = load_csv(path)
    np.testing.assert_array_equal(back.addrs, tr.addrs)


def test_csv_gzip_roundtrip(tmp_path):
    tr = _trace(seed=2)
    path = tmp_path / "t.csv.gz"
    save_csv(tr, path)
    back = load_csv(path)
    np.testing.assert_array_equal(back.addrs, tr.addrs)
    # gzip actually compressed (hex text of random data compresses somewhat)
    assert path.stat().st_size > 0


def test_csv_comments_and_header(tmp_path):
    path = tmp_path / "t.csv"
    path.write_text(
        "instr_id,pc,addr\n"
        "# a comment\n"
        "10,0x400123,0x7f0000001000\n"
        "20,4194595,139611588448256  # trailing comment\n"
    )
    tr = load_csv(path)
    assert len(tr) == 2
    assert tr.instr_ids.tolist() == [10, 20]
    assert tr.pcs[0] == 0x400123


def test_csv_malformed_field_count(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("10,0x1,0x2\n30,0x3\n")
    with pytest.raises(ValueError, match="expected 3 fields"):
        load_csv(path)


def test_csv_malformed_value(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("10,0x1,0x2\n20,xyz,0x4\n")
    with pytest.raises(ValueError, match="non-integer"):
        load_csv(path)


def test_csv_nonmonotonic_instr_ids_rejected(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("20,0x1,0x2\n10,0x3,0x4\n")
    with pytest.raises(ValueError, match="nondecreasing"):
        load_csv(path)


# -------------------------------------------------------------------- text
def test_text_roundtrip(tmp_path):
    tr = _trace(seed=3)
    path = tmp_path / "t.trace"
    save_text(tr, path)
    back = load_text(path)
    np.testing.assert_array_equal(back.instr_ids, tr.instr_ids)
    np.testing.assert_array_equal(back.addrs, tr.addrs)


def test_text_gzip_roundtrip(tmp_path):
    tr = _trace(seed=4)
    path = tmp_path / "t.trace.gz"
    save_text(tr, path)
    back = load_text(path)
    np.testing.assert_array_equal(back.addrs, tr.addrs)


def test_text_tolerates_extra_whitespace(tmp_path):
    path = tmp_path / "t.trace"
    path.write_text("  10   0x1\t0x40 \n\n20 0x2 0x80\n")
    tr = load_text(path)
    assert len(tr) == 2 and tr.addrs.tolist() == [0x40, 0x80]


# ---------------------------------------------------------------- load_any
def test_load_any_dispatch(tmp_path):
    tr = _trace(seed=5)
    npz = tmp_path / "t.npz"
    csv = tmp_path / "t.csv"
    txt = tmp_path / "t.trace"
    tr.save(npz)
    save_csv(tr, csv)
    save_text(tr, txt)
    for p in (npz, csv, txt):
        back = load_any(p)
        np.testing.assert_array_equal(back.addrs, tr.addrs)


def test_imported_trace_drives_simulator(tmp_path):
    from repro.sim import simulate

    tr = make_workload("619.lbm", scale=0.01, seed=0)
    path = tmp_path / "w.csv.gz"
    save_csv(tr, path)
    back = load_csv(path)
    r = simulate(back, None)
    assert r.demand_accesses == len(tr)


# ---------------------------------------------------------- Pareto frontier
@pytest.fixture(scope="module")
def configurator():
    return TableConfigurator()


def test_frontier_members_are_candidates(configurator):
    frontier = configurator.pareto_frontier()
    assert frontier
    cands = configurator.candidates
    assert all(f in cands for f in frontier)


def test_frontier_has_no_dominated_member(configurator):
    frontier = configurator.pareto_frontier()
    proxy = configurator.capacity_proxy
    for a in frontier:
        for b in frontier:
            if a is b:
                continue
            dominates = (
                b.latency_cycles <= a.latency_cycles
                and b.storage_bytes <= a.storage_bytes
                and proxy(b) >= proxy(a)
                and (
                    b.latency_cycles < a.latency_cycles
                    or b.storage_bytes < a.storage_bytes
                    or proxy(b) > proxy(a)
                )
            )
            assert not dominates


def test_frontier_smaller_than_design_space(configurator):
    assert len(configurator.pareto_frontier()) < len(configurator.candidates)


def test_feasible_region_respects_budgets(configurator):
    region = configurator.feasible_region(100, 1_000_000)
    assert region
    for c in region:
        assert c.latency_cycles < 100 and c.storage_bytes < 1_000_000
    # the greedy pick must come from the feasible region
    chosen = configurator.configure(100, 1_000_000)
    assert chosen in region
