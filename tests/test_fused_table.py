"""Fused multi-layer tables (paper Sec. VIII future-work prototype)."""

import numpy as np
import pytest

from repro.tabularization.fused import FusedFunctionTable


def _quadratic(rows):
    # an arbitrary nonlinear row-wise function
    return np.stack([rows.sum(axis=1) ** 2, np.maximum(rows, 0).sum(axis=1)], axis=1)


def _clustered(rng, n, d, k=12, spread=0.05):
    centers = rng.standard_normal((k, d)) * 2
    return centers[rng.integers(0, k, size=n)] + spread * rng.standard_normal((n, d))


def test_fused_c1_is_nearest_prototype_function(rng):
    x = _clustered(rng, 800, 6)
    fused = FusedFunctionTable.train(_quadratic, x, 6, 2, n_prototypes=64, n_subspaces=1, rng=0)
    approx = fused.query(x)
    exact = _quadratic(x)
    rel = np.abs(approx - exact).mean() / np.abs(exact).mean()
    assert rel < 0.2  # tight clusters -> tight nearest-prototype approximation


def test_fused_latency_is_half_of_two_kernels():
    rng = np.random.default_rng(0)
    x = _clustered(rng, 200, 6)
    fused = FusedFunctionTable.train(_quadratic, x, 6, 2, n_prototypes=128, n_subspaces=2, rng=0)
    two_kernel = 2 * (np.log2(128) + np.log2(2) + 1)
    assert fused.latency_cycles() == two_kernel / 2


def test_fused_error_grows_with_subspaces_for_nonlinear_fn(rng):
    """The additive decomposition cannot capture nonlinearity across subspaces."""
    x = _clustered(rng, 800, 8, spread=0.3)
    exact = _quadratic(x)
    errs = []
    for c in (1, 4):
        fused = FusedFunctionTable.train(_quadratic, x, 8, 2, n_prototypes=64, n_subspaces=c, rng=0)
        errs.append(float(np.abs(fused.query(x) - exact).mean()))
    assert errs[1] >= errs[0] * 0.8  # C>1 is no better (usually worse)


def test_fused_exact_for_linear_fn_any_c(rng):
    """For a *linear* fn the residual decomposition is exact on prototypes."""
    w = rng.standard_normal((2, 6))

    def lin(rows):
        return rows @ w.T

    x = _clustered(rng, 500, 6, spread=0.0)  # points exactly at prototypes
    fused = FusedFunctionTable.train(lin, x, 6, 2, n_prototypes=16, n_subspaces=2, rng=0)
    approx = fused.query(x)
    exact = lin(x)
    assert np.abs(approx - exact).max() < 1e-6


def test_fused_query_shapes(rng):
    x = _clustered(rng, 100, 6)
    fused = FusedFunctionTable.train(_quadratic, x, 6, 2, n_prototypes=16, n_subspaces=1, rng=0)
    out = fused.query(x.reshape(10, 10, 6))
    assert out.shape == (10, 10, 2)
    assert fused.storage_bits(16) > 0
