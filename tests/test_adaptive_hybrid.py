"""Feedback-directed throttling (FDP) and the composite prefetcher."""

import numpy as np
import pytest

from repro.prefetch import (
    CompositePrefetcher,
    FeedbackThrottle,
    NextLinePrefetcher,
    PrecomputedPrefetcher,
    StreamPrefetcher,
    ThrottleConfig,
)
from repro.sim import SimConfig, ipc_improvement, simulate
from repro.traces.generators import StreamPhase, compose_trace
from repro.traces.trace import MemoryTrace


def _stream_trace(n=4000, gap=20):
    return compose_trace([(StreamPhase(0, 10**7, stride_blocks=1), n)], seed=0, mean_instr_gap=gap)


# ---------------------------------------------------------------- controller
def test_throttle_validation():
    with pytest.raises(ValueError):
        FeedbackThrottle(ThrottleConfig(min_degree=4, initial_degree=2))


def test_throttle_grows_on_high_accuracy():
    t = FeedbackThrottle(ThrottleConfig(interval=10, initial_degree=2, max_degree=6))
    for _ in range(3):
        for _ in range(10):
            t.on_useful(late=False)
            t.on_issue()
    assert t.current_degree() > 2
    assert t.current_degree() <= 6


def test_throttle_shrinks_on_low_accuracy():
    t = FeedbackThrottle(ThrottleConfig(interval=10, initial_degree=4, min_degree=1))
    for _ in range(5):
        for _ in range(10):
            t.on_issue()  # issued, never useful
    assert t.current_degree() == 1


def test_throttle_grows_on_lateness():
    cfg = ThrottleConfig(interval=10, initial_degree=2, acc_high=0.99, late_high=0.5)
    t = FeedbackThrottle(cfg)
    for _ in range(10):
        t.on_useful(late=True)  # 100% late; accuracy below acc_high
        t.on_issue()
    assert t.current_degree() == 3


def test_throttle_shrinks_on_pollution():
    cfg = ThrottleConfig(interval=10, initial_degree=4, pollution_high=0.1, acc_high=0.5)
    t = FeedbackThrottle(cfg)
    for k in range(10):
        t.on_useful(late=False)
        t.on_prefetch_eviction(victim_block=1000 + k)
        t.on_demand_miss(1000 + k)  # every victim comes back: pure pollution
        t.on_issue()
    assert t.current_degree() == 3  # shrank despite perfect accuracy
    assert t.total_pollution == 10


def test_throttle_pollution_filter_bounded():
    t = FeedbackThrottle(ThrottleConfig(filter_entries=4))
    for k in range(10):
        t.on_prefetch_eviction(k)
    assert len(t._evicted) <= 4
    t.on_demand_miss(0)  # long-evicted entry fell out of the filter
    assert t.total_pollution == 0


def test_throttle_summary_fields():
    t = FeedbackThrottle()
    s = t.summary()
    assert s["final_degree"] == t.current_degree()
    assert s["adjustments"] == 0


# ------------------------------------------------------- simulator coupling
def test_fdp_raises_degree_on_accurate_stream():
    tr = _stream_trace()
    pf = NextLinePrefetcher(degree=8)  # offers 8 candidates; FDP gates them
    pf.latency_cycles = 0
    throttle = FeedbackThrottle(ThrottleConfig(initial_degree=1, max_degree=8, interval=128))
    r = simulate(tr, pf, SimConfig(), throttle=throttle)
    info = r.extra["throttle"]
    assert info["final_degree"] > 1  # accurate stream: controller opened up
    assert info["adjustments"] > 0


def test_fdp_clamps_junk_prefetcher():
    tr = _stream_trace(3000)
    junk = [[int(b) + 10**6, int(b) + 2 * 10**6] for b in tr.block_addrs]
    pf = PrecomputedPrefetcher(junk, name="junk")
    throttle = FeedbackThrottle(ThrottleConfig(initial_degree=8, max_degree=8, interval=128))
    r = simulate(tr, pf, SimConfig(), throttle=throttle)
    assert r.extra["throttle"]["final_degree"] == 1
    # throttling reduces junk issued vs. unthrottled
    r_free = simulate(tr, pf, SimConfig())
    assert r.prefetches_issued < r_free.prefetches_issued


def test_fdp_never_hurts_a_good_prefetcher_much():
    tr = _stream_trace()
    base = simulate(tr, None)
    pf = NextLinePrefetcher(degree=4)
    pf.latency_cycles = 0
    plain = ipc_improvement(simulate(tr, pf), base)
    throttled = ipc_improvement(
        simulate(tr, NextLinePrefetcher(degree=4), SimConfig(), throttle=FeedbackThrottle()),
        base,
    )
    assert throttled > 0.5 * plain


def test_no_throttle_means_no_extra():
    tr = _stream_trace(500)
    r = simulate(tr, NextLinePrefetcher(degree=1))
    assert "throttle" not in r.extra


# --------------------------------------------------------------- composite
def _fixed(lists, name, latency=0):
    return PrecomputedPrefetcher([list(x) for x in lists], name=name, latency_cycles=latency)


def test_composite_validation():
    with pytest.raises(ValueError):
        CompositePrefetcher([])
    with pytest.raises(ValueError):
        CompositePrefetcher([NextLinePrefetcher()], max_degree=0)


def test_composite_merges_in_priority_order():
    n = 3
    tr = MemoryTrace(np.arange(1, n + 1) * 10, np.zeros(n, dtype=np.int64),
                     np.arange(n, dtype=np.int64) << 6)
    a = _fixed([[10, 11]] * n, "A")
    b = _fixed([[11, 12, 13]] * n, "B")
    comp = CompositePrefetcher([a, b], max_degree=3)
    lists = comp.prefetch_lists(tr)
    assert lists[0] == [10, 11, 12]  # A first, dupes dropped, budget capped


def test_composite_name_latency_storage():
    a = NextLinePrefetcher(degree=1)
    a.latency_cycles, a.storage_bytes = 10, 100.0
    b = StreamPrefetcher()
    b.latency_cycles, b.storage_bytes = 50, 200.0
    par = CompositePrefetcher([a, b])
    assert par.latency_cycles == 50 and par.storage_bytes == 300.0
    staged = CompositePrefetcher([a, b], parallel=False)
    assert staged.latency_cycles == 60
    named = CompositePrefetcher([a, b], name="Hybrid")
    assert named.name == "Hybrid"
    assert "+" in par.name


def test_composite_length_mismatch_rejected():
    n = 4
    tr = MemoryTrace(np.arange(1, n + 1) * 10, np.zeros(n, dtype=np.int64),
                     np.arange(n, dtype=np.int64) << 6)
    bad = _fixed([[1]] * 2, "bad")
    with pytest.raises(ValueError):
        CompositePrefetcher([bad]).prefetch_lists(tr)


def test_composite_at_least_as_good_as_best_member_on_stream():
    tr = _stream_trace()
    base = simulate(tr, None)
    stream = StreamPrefetcher(degree=4)
    nl = NextLinePrefetcher(degree=1)
    nl.latency_cycles = 0
    comp = CompositePrefetcher([stream, nl], max_degree=4)
    comp.latency_cycles = 0
    imp_comp = ipc_improvement(simulate(tr, comp), base)
    imp_nl = ipc_improvement(simulate(tr, nl), base)
    assert imp_comp >= imp_nl - 0.02
