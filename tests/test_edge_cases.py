"""Failure injection and degenerate inputs across the public API.

Empty traces, corrupt files, NaN inputs, zero-length datasets: the library
must fail loudly at the boundary (clear ValueError/KeyError) or handle the
degenerate case exactly — never crash deep inside a kernel or silently
produce garbage.
"""

import numpy as np
import pytest

from repro.prefetch import (
    BestOffsetPrefetcher,
    GHBPrefetcher,
    ISBPrefetcher,
    MarkovPrefetcher,
    NextLinePrefetcher,
    SMSPrefetcher,
    SPPPrefetcher,
    StreamPrefetcher,
    StridePrefetcher,
)
from repro.sim import SimConfig, simulate, simulate_hierarchy
from repro.traces.trace import MemoryTrace

EMPTY = MemoryTrace(
    np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
)

ALL_RULE_BASED = [
    BestOffsetPrefetcher,
    ISBPrefetcher,
    StridePrefetcher,
    NextLinePrefetcher,
    SPPPrefetcher,
    SMSPrefetcher,
    lambda: GHBPrefetcher("global"),
    MarkovPrefetcher,
    StreamPrefetcher,
]


# ------------------------------------------------------------- empty traces
def test_empty_trace_through_flat_simulator():
    r = simulate(EMPTY, None)
    assert r.demand_accesses == 0 and r.instructions == 0
    assert r.ipc == 0.0


def test_empty_trace_through_hierarchy():
    r = simulate_hierarchy(EMPTY)
    assert r.l1d.accesses == 0
    assert r.sim.cycles == 0.0


@pytest.mark.parametrize("make_pf", ALL_RULE_BASED)
def test_empty_trace_through_every_prefetcher(make_pf):
    pf = make_pf()
    assert pf.prefetch_lists(EMPTY) == []


def test_single_access_trace_everywhere():
    tr = MemoryTrace(np.array([5]), np.array([1]), np.array([0x1000]))
    r = simulate(tr, NextLinePrefetcher(degree=1))
    assert r.demand_accesses == 1 and r.demand_misses == 1
    for make_pf in ALL_RULE_BASED:
        lists = make_pf().prefetch_lists(tr)
        assert len(lists) == 1


# --------------------------------------------------------------- bad traces
def test_trace_length_mismatch_rejected():
    with pytest.raises(ValueError, match="equal length"):
        MemoryTrace(np.array([1, 2]), np.array([0]), np.array([0, 0]))


def test_trace_decreasing_instr_ids_rejected():
    with pytest.raises(ValueError, match="nondecreasing"):
        MemoryTrace(np.array([5, 3]), np.array([0, 0]), np.array([0, 0]))


# ------------------------------------------------------------- corrupt files
def test_corrupt_npz_trace(tmp_path):
    path = tmp_path / "t.npz"
    path.write_bytes(b"definitely not a zip file")
    with pytest.raises(Exception):
        MemoryTrace.load(path)


def test_truncated_packed_export(tmp_path):
    from repro.tabularization import read_packed, write_packed

    path = tmp_path / "t.bin"
    write_packed(path, {"x": np.arange(100, dtype=np.float64)})
    raw = path.read_bytes()
    path.write_bytes(raw[: len(raw) // 2])  # truncate mid-payload
    with pytest.raises(Exception):
        read_packed(path)


def test_model_state_dict_mismatch_rejected():
    from repro.models import AttentionPredictor, ModelConfig

    cfg = ModelConfig(layers=1, dim=8, heads=2, history_len=4, bitmap_size=8)
    m = AttentionPredictor(cfg, 3, 2, rng=0)
    state = m.state_dict()
    state.pop(next(iter(state)))
    with pytest.raises(KeyError, match="mismatch"):
        m.load_state_dict(state)


def test_model_state_dict_shape_mismatch_rejected():
    from repro.models import AttentionPredictor, ModelConfig

    cfg = ModelConfig(layers=1, dim=8, heads=2, history_len=4, bitmap_size=8)
    m = AttentionPredictor(cfg, 3, 2, rng=0)
    state = m.state_dict()
    key = next(iter(state))
    state[key] = np.zeros((1, 1))
    with pytest.raises(ValueError, match="shape"):
        m.load_state_dict(state)


# ------------------------------------------------------------------ NaN/inf
def test_nan_inputs_do_not_crash_predictor():
    from repro.models import AttentionPredictor, ModelConfig

    cfg = ModelConfig(layers=1, dim=8, heads=2, history_len=4, bitmap_size=8)
    m = AttentionPredictor(cfg, 3, 2, rng=0)
    x_addr = np.full((2, 4, 3), np.nan)
    x_pc = np.zeros((2, 4, 2))
    out = m.predict_proba(x_addr, x_pc)
    assert out.shape == (2, 8)  # propagates NaN, does not raise


def test_bce_loss_extreme_logits_finite():
    from repro.nn import bce_with_logits

    z = np.array([[1e4, -1e4]])
    t = np.array([[1.0, 0.0]])
    loss, grad = bce_with_logits(z, t)
    assert np.isfinite(loss)
    assert np.all(np.isfinite(grad))


def test_softmax_extreme_logits_finite():
    from repro.nn import functional as F

    z = np.array([[1e8, -1e8, 0.0]])
    s = F.softmax(z)
    assert np.all(np.isfinite(s))
    np.testing.assert_allclose(s.sum(), 1.0)


# --------------------------------------------------------------- empty data
def test_empty_dataset_predicts_empty():
    from repro.models import AttentionPredictor, ModelConfig

    cfg = ModelConfig(layers=1, dim=8, heads=2, history_len=4, bitmap_size=8)
    m = AttentionPredictor(cfg, 3, 2, rng=0)
    out = m.predict_proba(np.zeros((0, 4, 3)), np.zeros((0, 4, 2)))
    assert out.shape == (0, 8)


def test_short_trace_rejected_loudly_by_dataset_builder():
    from repro.data import PreprocessConfig, build_dataset

    cfg = PreprocessConfig(history_len=8, window=4, delta_range=16)
    with pytest.raises(ValueError, match="too short"):
        build_dataset(np.zeros(3, dtype=np.int64), np.zeros(3, dtype=np.int64), cfg)


def test_simulator_with_zero_latency_dram():
    tr = MemoryTrace(np.array([10, 20]), np.zeros(2, dtype=np.int64),
                     np.array([0, 64], dtype=np.int64))
    r = simulate(tr, None, SimConfig(dram_latency=0.0, llc_latency=0.0))
    assert r.cycles > 0  # retire bandwidth still paces the core
