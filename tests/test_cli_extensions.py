"""CLI: the hierarchy/multicore/analyze/export subcommands and the extended
prefetcher factory."""

import pytest

from repro.cli import PREFETCHER_CHOICES, _make_prefetcher, main
from repro.tabularization import save_tabular_model


def test_factory_builds_every_choice_except_dart():
    for name in PREFETCHER_CHOICES:
        if name in ("none", "dart"):
            continue
        pf = _make_prefetcher(name, None)
        assert pf is not None and pf.name


def test_factory_none():
    assert _make_prefetcher("none", None) is None


def test_simulate_accepts_new_prefetchers(capsys):
    rc = main(
        ["simulate", "--workload", "462.libquantum", "--scale", "0.02",
         "--prefetcher", "spp"]
    )
    assert rc == 0
    assert "SPP" in capsys.readouterr().out


def test_hierarchy_subcommand(capsys):
    rc = main(
        ["hierarchy", "--workload", "619.lbm", "--scale", "0.02",
         "--prefetcher", "streamer"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "L1D hit" in out and "DRAM row hit" in out and "Streamer" in out


def test_hierarchy_no_paging_and_tlb_flags(capsys):
    rc = main(
        ["hierarchy", "--workload", "619.lbm", "--scale", "0.01",
         "--prefetcher", "none", "--no-paging", "--tlb"]
    )
    assert rc == 0


def test_multicore_subcommand(capsys):
    rc = main(
        ["multicore", "462.libquantum", "619.lbm", "--scale", "0.01",
         "--prefetcher", "nextline"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "core0:462.libquantum" in out and "aggregate" in out


def test_analyze_subcommand(capsys):
    rc = main(["analyze", "--workload", "605.mcf", "--scale", "0.01"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "OPT miss rate" in out and "replacement headroom" in out


def test_export_subcommand(tmp_path, tabular_student, capsys):
    tab, _ = tabular_student
    npz = tmp_path / "tables.npz"
    save_tabular_model(tab, npz)
    out = tmp_path / "tables.bin"
    rc = main(["export", str(npz), str(out), "--float-dtype", "float32"])
    assert rc == 0
    assert out.exists() and out.stat().st_size > 1024
    assert "exported" in capsys.readouterr().out

    from repro.tabularization import import_packed

    model = import_packed(out)
    assert model.latency_cycles() == tab.latency_cycles()


def test_export_info_packed_and_npz(tmp_path, tabular_student, capsys):
    from repro.runtime import ModelArtifact

    tab, _ = tabular_student
    npz = tmp_path / "tables.npz"
    ModelArtifact(tab, version=4, metadata={"trained_on": "demo"}).save(npz)
    # --info on the .npz artifact
    rc = main(["export", str(npz), "--info"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "4" in out and "demo" in out
    # pack it, then --info on the packed blob (header-only read)
    blob = tmp_path / "tables.bin"
    rc = main(["export", str(npz), str(blob)])
    assert rc == 0
    assert "v4" in capsys.readouterr().out
    rc = main(["export", str(blob), "--info"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "artifact version" in out and "demo" in out


def test_export_without_output_or_info_rejected(tmp_path, tabular_student):
    from repro.runtime import ModelArtifact

    tab, _ = tabular_student
    npz = tmp_path / "tables.npz"
    ModelArtifact(tab).save(npz)
    with pytest.raises(SystemExit):
        main(["export", str(npz)])


def test_stream_adapt_flag_validation(tmp_path, tabular_student):
    tab, _ = tabular_student
    npz = tmp_path / "tables.npz"
    save_tabular_model(tab, npz)
    # adapt needs dart
    with pytest.raises(SystemExit):
        main(["stream", "--workload", "462.libquantum", "--scale", "0.01",
              "--prefetcher", "bo", "--adapt"])
    # adapt + dart needs a student
    with pytest.raises(SystemExit):
        main(["stream", "--workload", "462.libquantum", "--scale", "0.01",
              "--prefetcher", "dart", "--tables", str(npz), "--adapt"])
    # adapt excludes --compare-batch and --cores
    with pytest.raises(SystemExit):
        main(["stream", "--workload", "462.libquantum", "--scale", "0.01",
              "--prefetcher", "dart", "--tables", str(npz), "--adapt",
              "--compare-batch"])
    with pytest.raises(SystemExit):
        main(["stream", "--workload", "462.libquantum", "--scale", "0.01",
              "--prefetcher", "dart", "--tables", str(npz), "--adapt",
              "--cores", "2"])


def test_stream_adapt_end_to_end(tmp_path, tabular_student, trained_student, capsys):
    import json

    from repro.models import save_attention_predictor
    from repro.runtime import ModelArtifact

    tab, _ = tabular_student
    npz = tmp_path / "tables.npz"
    ModelArtifact(tab, version=1).save(npz)
    student_path = tmp_path / "student.npz"
    save_attention_predictor(trained_student, student_path)
    out = tmp_path / "stats.json"
    rc = main(["stream", "--workload", "462.libquantum", "--scale", "0.02",
               "--prefetcher", "dart", "--tables", str(npz),
               "--student", str(student_path), "--adapt",
               "--adapt-window", "1024", "--batch-size", "16",
               "--max-wait", "4", "--json", str(out)])
    assert rc == 0
    text = capsys.readouterr().out
    assert "adaptations" in text and "model version" in text
    record = json.loads(out.read_text())
    assert "adaptation" in record
    assert record["adaptation"]["version"] >= 1


def test_train_save_student_roundtrip(tmp_path):
    """train --save-student writes a student the adapt path can reload."""
    from repro.models import load_attention_predictor

    tables = tmp_path / "t.npz"
    student = tmp_path / "s.npz"
    rc = main(["train", "--workload", "462.libquantum", "--scale", "0.01",
               "--epochs", "1", "--max-samples", "300",
               "--teacher-layers", "1", "--teacher-dim", "16",
               "--teacher-heads", "2", "-o", str(tables),
               "--save-student", str(student)])
    assert rc == 0
    model = load_attention_predictor(student)
    from repro.runtime import ModelArtifact

    art = ModelArtifact.load(tables)
    assert art.version == 1
    assert art.metadata["trained_on"] == "462.libquantum"
    assert model.config.history_len == art.model_config.history_len
