"""CLI: the hierarchy/multicore/analyze/export subcommands and the extended
prefetcher factory."""

import pytest

from repro.cli import PREFETCHER_CHOICES, _make_prefetcher, main
from repro.tabularization import save_tabular_model


def test_factory_builds_every_choice_except_dart():
    for name in PREFETCHER_CHOICES:
        if name in ("none", "dart"):
            continue
        pf = _make_prefetcher(name, None)
        assert pf is not None and pf.name


def test_factory_none():
    assert _make_prefetcher("none", None) is None


def test_simulate_accepts_new_prefetchers(capsys):
    rc = main(
        ["simulate", "--workload", "462.libquantum", "--scale", "0.02",
         "--prefetcher", "spp"]
    )
    assert rc == 0
    assert "SPP" in capsys.readouterr().out


def test_hierarchy_subcommand(capsys):
    rc = main(
        ["hierarchy", "--workload", "619.lbm", "--scale", "0.02",
         "--prefetcher", "streamer"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "L1D hit" in out and "DRAM row hit" in out and "Streamer" in out


def test_hierarchy_no_paging_and_tlb_flags(capsys):
    rc = main(
        ["hierarchy", "--workload", "619.lbm", "--scale", "0.01",
         "--prefetcher", "none", "--no-paging", "--tlb"]
    )
    assert rc == 0


def test_multicore_subcommand(capsys):
    rc = main(
        ["multicore", "462.libquantum", "619.lbm", "--scale", "0.01",
         "--prefetcher", "nextline"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "core0:462.libquantum" in out and "aggregate" in out


def test_analyze_subcommand(capsys):
    rc = main(["analyze", "--workload", "605.mcf", "--scale", "0.01"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "OPT miss rate" in out and "replacement headroom" in out


def test_export_subcommand(tmp_path, tabular_student, capsys):
    tab, _ = tabular_student
    npz = tmp_path / "tables.npz"
    save_tabular_model(tab, npz)
    out = tmp_path / "tables.bin"
    rc = main(["export", str(npz), str(out), "--float-dtype", "float32"])
    assert rc == 0
    assert out.exists() and out.stat().st_size > 1024
    assert "exported" in capsys.readouterr().out

    from repro.tabularization import import_packed

    model = import_packed(out)
    assert model.latency_cycles() == tab.latency_cycles()
