"""Cache model, timing simulator, and prefetch-timeliness behaviour."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.prefetch import NextLinePrefetcher, PrecomputedPrefetcher
from repro.sim import SetAssocCache, SimConfig, ipc_improvement, simulate
from repro.traces.generators import StreamPhase, compose_trace
from repro.traces.trace import MemoryTrace


# ------------------------------------------------------------------- cache
def test_cache_hit_after_insert():
    c = SetAssocCache(4, 2)
    c.insert(0x10, ready_cycle=0.0, prefetched=False)
    assert c.lookup(0x10) is not None
    assert c.lookup(0x11) is None


def test_cache_lru_eviction_order():
    c = SetAssocCache(1, 2)  # single set, 2 ways
    c.insert(1, 0.0, False)
    c.insert(2, 0.0, False)
    c.lookup(1)  # refresh 1 -> LRU is 2
    c.insert(3, 0.0, False)
    assert c.lookup(2) is None
    assert c.lookup(1) is not None and c.lookup(3) is not None


def test_cache_occupancy_bounded():
    c = SetAssocCache(2, 2)
    for b in range(20):
        c.insert(b, 0.0, False)
    assert c.occupancy() <= 4


def test_cache_from_capacity():
    c = SetAssocCache.from_capacity(8 * 1024 * 1024, n_ways=16)
    assert c.n_sets * c.n_ways * 64 == 8 * 1024 * 1024


def test_cache_validation():
    with pytest.raises(ValueError):
        SetAssocCache(3, 2)  # not a power of two
    with pytest.raises(ValueError):
        SetAssocCache(4, 0)


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=200))
def test_cache_property_never_exceeds_ways(blocks):
    c = SetAssocCache(4, 3)
    for b in blocks:
        c.insert(b, 0.0, False)
    for s in c._sets:
        assert len(s) <= 3


# --------------------------------------------------------------- simulator
def _stream_trace(n=4000, gap=12):
    ph = StreamPhase(0, 10**7, stride_blocks=1)
    tr = compose_trace([(ph, n)], seed=0, mean_instr_gap=gap)
    return tr


def test_baseline_all_misses_on_cold_stream():
    tr = _stream_trace(2000)
    r = simulate(tr, None)
    assert r.demand_misses == 2000
    assert r.demand_hits == 0
    assert r.ipc > 0


def test_repeated_block_hits():
    addrs = np.zeros(100, dtype=np.int64)  # same block forever
    tr = MemoryTrace(np.arange(1, 101) * 10, np.zeros(100, dtype=np.int64), addrs)
    r = simulate(tr, None)
    assert r.demand_misses == 1
    assert r.demand_hits == 99


def test_mlp_overlap_beats_serialized_misses():
    """ROB-bounded overlap: IPC must far exceed the fully-serialized bound."""
    tr = _stream_trace(3000, gap=10)
    r = simulate(tr, None, SimConfig(dram_latency=200.0, rob=256, width=4))
    serialized_cycles = 3000 * 200.0
    assert r.cycles < 0.25 * serialized_cycles


def test_smaller_rob_lowers_ipc():
    tr = _stream_trace(3000, gap=10)
    big = simulate(tr, None, SimConfig(rob=512))
    small = simulate(tr, None, SimConfig(rob=32))
    assert big.ipc > small.ipc


def test_timely_oracle_prefetcher_recovers_peak_ipc():
    """An oracle prefetching 40 accesses ahead hides the full DRAM latency."""
    tr = _stream_trace(4000, gap=20)
    base = simulate(tr, None)
    ba = tr.block_addrs
    lookahead = 40
    lists = [
        [int(ba[i + lookahead])] if i + lookahead < len(ba) else []
        for i in range(len(ba))
    ]
    r = simulate(tr, PrecomputedPrefetcher(lists, name="oracle"))
    assert r.prefetches_issued > 0
    assert r.accuracy > 0.9
    assert ipc_improvement(r, base) > 0.5
    assert r.coverage(base.demand_misses) > 0.8


def test_shallow_next_line_is_late_but_not_useless():
    """Degree-4 next-line only looks ~20 cycles ahead of a 200-cycle miss:
    prefetches are late (in-flight hits), giving a small positive gain."""
    tr = _stream_trace(4000, gap=20)
    base = simulate(tr, None)
    pf = NextLinePrefetcher(degree=4)
    pf.latency_cycles = 0
    r = simulate(tr, pf)
    imp = ipc_improvement(r, base)
    assert 0.0 < imp < 0.5
    assert r.late_prefetch_hits > 0


def test_prefetch_latency_degrades_benefit():
    """The paper's core claim: slower predictors help less."""
    tr = _stream_trace(4000, gap=20)
    base = simulate(tr, None)
    imps = []
    for latency in (0, 500, 27_000):
        pf = NextLinePrefetcher(degree=2)
        pf.latency_cycles = latency
        imps.append(ipc_improvement(simulate(tr, pf), base))
    assert imps[0] >= imps[1] >= imps[2]
    assert imps[0] > imps[2]  # strictly worse when very late


def test_useless_prefetches_do_not_help():
    tr = _stream_trace(2000, gap=15)
    base = simulate(tr, None)
    junk = [[int(b) + 10**6] for b in tr.block_addrs]  # never-accessed blocks
    r = simulate(tr, PrecomputedPrefetcher(junk, name="junk"))
    assert r.prefetches_useful == 0
    assert r.accuracy == 0.0
    assert ipc_improvement(r, base) <= 0.01


def test_prefetch_dedup_against_cache_contents():
    """Prefetching an already-cached block must not count as issued."""
    addrs = np.zeros(50, dtype=np.int64)
    tr = MemoryTrace(np.arange(1, 51) * 10, np.zeros(50, dtype=np.int64), addrs)
    same = [[0] for _ in range(50)]  # prefetch the block we always touch
    r = simulate(tr, PrecomputedPrefetcher(same, name="dup"))
    assert r.prefetches_issued <= 1


def test_accuracy_counts_each_line_once():
    tr = _stream_trace(1000, gap=15)
    pf = NextLinePrefetcher(degree=1)
    pf.latency_cycles = 0
    r = simulate(tr, pf)
    assert r.prefetches_useful <= r.prefetches_issued


def test_sim_result_summary_and_metrics():
    tr = _stream_trace(500)
    r = simulate(tr, None, name="base")
    s = r.summary()
    assert s["name"] == "base" and 0 <= s["hit_rate"] <= 1
    assert r.coverage(0) == 0.0
    assert ipc_improvement(r, r) == 0.0


def test_instructions_accounted():
    tr = _stream_trace(300)
    r = simulate(tr, None)
    assert r.instructions == tr.num_instructions
    assert r.demand_accesses == 300
