"""The one serving-conformance oracle: every engine vs. batch, one matrix.

Every serving path this repo has grown — synchronous ``stream()``,
micro-batched ``MicroBatcher``, shared-model ``MultiStreamEngine``,
multi-process ``ShardedEngine`` — promises the same thing: per-stream
emissions **bit-identical** to the batch ``prefetch_lists`` oracle. Earlier
PRs each pinned their own engine with ad-hoc tests; this suite is the single
parametrized matrix ({DART, NN, 2 rule-based} x {B=1, B=32} x engine) every
future engine plugs into instead.

Cells that cannot apply are *skipped with a reason*, not silently dropped:
rule-based prefetchers are synchronous state machines (no micro-batch, no
shared model), so only the ``stream`` engine applies to them and the batch
size is meaningless.
"""

from __future__ import annotations

import pytest

from repro.prefetch import BestOffsetPrefetcher, NeuralPrefetcher, StreamPrefetcher
from repro.runtime import MicroBatcher, as_streaming

# The two mid-trace churn columns pin the elastic engine to the same oracle:
# ElasticSharded with a rescale (grow then shrink) or a migration (there and
# back) injected mid-trace must still be bit-identical per stream. Future
# engines — elastic or not — plug in here instead of growing ad-hoc tests.
ENGINES = [
    "stream",
    "microbatcher",
    "multistream",
    "sharded",
    "sharded-ring",
    "sharded-pipelined",
    "sharded-pipelined-ring",
    "elastic-rescale",
    "elastic-migrate",
    # Record a live session, replay the trace on a fresh engine under the
    # full behavioral-contract set; bit-identity makes replay transitively
    # conformant with the batch oracle.
    "recorded-replay",
    # The admission throttle's zero-overhead guarantee: a fleet wrapped in
    # an AdmissionController whose throttle can never fire (floor 0.0) must
    # be bit-identical to the unwrapped engines — and hence to the oracle.
    "throttled",
]
MODEL_BACKED = {"dart", "nn"}


@pytest.fixture(scope="module")
def conformance_traces(libquantum_traces):
    """Two genuinely different streams (the multi-stream engines serve both)."""
    return libquantum_traces(2, 450, 21)


@pytest.fixture(scope="module")
def prefetchers(dart, trained_student, preprocess_config):
    return {
        "dart": dart,
        "nn": NeuralPrefetcher(
            trained_student, preprocess_config, name="TransFetch",
            latency_cycles=0, threshold=0.4, max_degree=3,
        ),
        "bo": BestOffsetPrefetcher(),
        "streamer": StreamPrefetcher(),
    }


@pytest.fixture(scope="module")
def oracles(prefetchers, conformance_traces):
    """Batch ``prefetch_lists`` per (prefetcher, trace): the ground truth."""
    return {
        kind: [pf.prefetch_lists(t) for t in conformance_traces]
        for kind, pf in prefetchers.items()
    }


def drive(stream, trace) -> list[list[int]]:
    """Generic streaming driver: place each emission at its trigger access."""
    out: list[list[int]] = [[] for _ in range(len(trace))]
    for i in range(len(trace)):
        for em in stream.ingest(int(trace.pcs[i]), int(trace.addrs[i])):
            out[em.seq] = list(em.blocks)
    for em in stream.flush():
        out[em.seq] = list(em.blocks)
    return out


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("batch_size", [1, 32])
@pytest.mark.parametrize("kind", ["dart", "nn", "bo", "streamer"])
def test_engine_matches_batch_oracle(
    kind, batch_size, engine, prefetchers, oracles, conformance_traces
):
    pf = prefetchers[kind]
    if kind not in MODEL_BACKED:
        if engine not in ("stream", "throttled"):
            pytest.skip(f"rule-based {kind} has no {engine} engine (synchronous)")
        if batch_size != 1:
            pytest.skip("rule-based streams are synchronous; B does not apply")

    if engine == "stream":
        kwargs = {"batch_size": batch_size} if kind in MODEL_BACKED else {}
        stream = as_streaming(pf, **kwargs)
        got = drive(stream, conformance_traces[0])
        assert got == oracles[kind][0]
        if kind == "dart" and batch_size == 1:
            # B=1 DART must actually serve through the single-query fast path
            # (which the equality above pins bit-identical to the oracle).
            assert stream.fast_path_flushes > 0
    elif engine == "microbatcher":
        model = pf.predictor if kind == "dart" else pf.model
        mb = MicroBatcher(
            model.predict_proba, pf.config,
            threshold=pf.threshold, max_degree=pf.max_degree, decode=pf.decode,
            batch_size=batch_size,
        )

        class _AsStream:  # MicroBatcher speaks push/flush, not ingest/flush
            ingest = staticmethod(mb.push)
            flush = staticmethod(mb.flush)

        got = drive(_AsStream, conformance_traces[0])
        assert got == oracles[kind][0]
    elif engine == "multistream":
        ms = pf.multistream(batch_size=batch_size)
        handles = ms.streams(2)
        got = [drive_pair(handles, conformance_traces)]
        for s, trace in enumerate(conformance_traces):
            assert got[0][s] == oracles[kind][s], f"stream {s} diverged"
    elif engine.startswith("sharded"):
        ipc = "ring" if engine.endswith("-ring") else "pipe"
        depth = 4 if "pipelined" in engine else 1
        with pf.sharded(
            workers=2, batch_size=batch_size, ipc=ipc, pipeline_depth=depth
        ) as eng:
            _, per_stream, lists = eng.serve(conformance_traces, collect=True)
            stats = eng.stats()
            assert stats["ipc"] == ipc
            assert stats["pipeline"]["depth"] == depth
        for s in range(2):
            assert lists[s] == oracles[kind][s], f"stream {s} diverged"
            assert per_stream[s].accesses == len(conformance_traces[s])
    elif engine == "throttled":
        from repro.runtime import AdmissionController, ThrottleConfig

        # floor=0.0 means accuracy can never sink below the floor, so the
        # throttle never escalates — the never-fires column of the matrix.
        ctl = AdmissionController(ThrottleConfig(floor=0.0, recover=0.0))
        if kind in MODEL_BACKED:
            ms = pf.multistream(batch_size=batch_size)
            handles = ctl.wrap_all(list(ms.streams(2)))
            got = drive_pair(handles, conformance_traces)
            for s in range(2):
                assert got[s] == oracles[kind][s], f"stream {s} diverged"
        else:
            stream = ctl.wrap(as_streaming(pf))
            assert drive(stream, conformance_traces[0]) == oracles[kind][0]
        # The wrapper really was engaged, and it never moved a tenant.
        assert ctl.states() and all(s == "full" for s in ctl.states().values())
        assert all(not t.transitions for t in ctl.tenants.values())
    elif engine == "recorded-replay":
        from repro.runtime import SessionRecorder, replay

        rec = SessionRecorder()
        ms = pf.multistream(batch_size=batch_size)
        rec.attach(ms, model=getattr(pf, "artifact", None) or pf.model)
        handles = ms.streams(2)
        got = drive_pair(handles, conformance_traces)
        for s, trace in enumerate(conformance_traces):
            assert got[s] == oracles[kind][s], f"stream {s} diverged (live)"
        # replay() raises ContractViolation if the fresh engine's emissions
        # differ from the recorded ones in any bit; recorded == oracle above.
        report = replay(rec.trace())
        assert report.column == "multistream"
        assert report.accesses == sum(len(t) for t in conformance_traces)
        assert "bit-identity" in report.contracts
    else:  # elastic-rescale / elastic-migrate: churn injected mid-trace
        n = len(conformance_traces[0])
        churn = {
            "elastic-rescale": {n // 4: lambda e, h: e.rescale(3),
                                3 * n // 4: lambda e, h: e.rescale(1)},
            "elastic-migrate": {n // 3: lambda e, h: e.migrate_stream(h[0], 1),
                                2 * n // 3: lambda e, h: e.migrate_stream(h[0], 0)},
        }[engine]
        with pf.sharded(workers=2, batch_size=batch_size, io_chunk=16) as eng:
            handles = [eng.open_stream(f"t{s}") for s in range(2)]
            out = [[[] for _ in range(len(t))] for t in conformance_traces]
            for i in range(n):
                if i in churn:
                    churn[i](eng, handles)
                for h, t in zip(handles, conformance_traces):
                    for em in h.ingest(int(t.pcs[i]), int(t.addrs[i])):
                        out[h.index][em.seq] = list(em.blocks)
            for h in handles:
                for em in eng.close_stream(h):
                    out[h.index][em.seq] = list(em.blocks)
            assert eng.stats()["elastic"]["closed"] == 2
        for s in range(2):
            assert out[s] == oracles[kind][s], f"stream {s} diverged under churn"

    # The model actually prefetches on this workload — an all-empty oracle
    # would make every equality above vacuous.
    assert any(any(row) for row in oracles[kind][0])


def drive_pair(handles, traces) -> list[list[list[int]]]:
    """Interleave two streams through their shared-engine handles."""
    out = [[[] for _ in range(len(t))] for t in traces]
    for i in range(max(len(t) for t in traces)):
        for h, t in zip(handles, traces):
            if i < len(t):
                for em in h.ingest(int(t.pcs[i]), int(t.addrs[i])):
                    out[h.index][em.seq] = list(em.blocks)
    for h in handles:
        for em in h.flush():
            out[h.index][em.seq] = list(em.blocks)
    return out
