"""Gate semantics of the CI trend folder (``benchmarks/trend.py``).

Pins the two historical blind spots: an artifact that *exists but cannot be
parsed* (truncated upload) must fail ``--strict`` instead of vanishing from
the table, and a gate buried one level deep (``{"section": {"pass": false}}``)
must surface with a dotted metric key and trip ``--strict``.
"""

from __future__ import annotations

import importlib.util
import json
import pathlib

import pytest

_TREND = pathlib.Path(__file__).resolve().parent.parent / "benchmarks" / "trend.py"


@pytest.fixture(scope="module")
def trend():
    spec = importlib.util.spec_from_file_location("trend", _TREND)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def _write(dirpath, name, record):
    (dirpath / f"BENCH_{name}.json").write_text(json.dumps(record))


def test_all_green_exits_zero(trend, tmp_path, capsys):
    _write(tmp_path, "a", {"pass": True, "throughput": 1.5})
    assert trend.main(["--dir", str(tmp_path), "--strict"]) == 0
    assert "all gates green" in capsys.readouterr().out


def test_truncated_artifact_fails_strict(trend, tmp_path, capsys):
    _write(tmp_path, "good", {"pass": True, "ratio": 2.0})
    # A truncated upload: valid JSON prefix, cut mid-stream.
    (tmp_path / "BENCH_broken.json").write_text('{"pass": true, "rat')
    assert trend.main(["--dir", str(tmp_path), "--strict"]) == 1
    out = capsys.readouterr().out
    assert "unreadable" in out
    assert "BENCH_broken" in out
    # Report-only mode still renders it but does not fail the step.
    assert trend.main(["--dir", str(tmp_path)]) == 0
    # The merged trend records the failure for the diffable history.
    merged = json.loads((tmp_path / "BENCH_trend.json").read_text())
    assert merged["artifacts"]["BENCH_broken"]["gate"] == "unreadable"
    assert merged["all_pass"] is False


def test_nested_failing_gate_fails_strict(trend, tmp_path, capsys):
    _write(tmp_path, "elastic", {
        "pass": True,  # headline gate green; the buried section is not
        "migration": {"pass": True, "paused_ms": 1.2},
        "swap": {"pass": False, "paused_ms": 9.9, "status": "fail"},
    })
    assert trend.main(["--dir", str(tmp_path), "--strict"]) == 1
    out = capsys.readouterr().out
    assert "swap.pass" in out and "swap.paused_ms" in out
    merged = json.loads((tmp_path / "BENCH_trend.json").read_text())
    art = merged["artifacts"]["BENCH_elastic"]
    assert art["gate"] == "FAIL"
    assert art["nested_failures"] == ["swap"]


def test_nested_status_fail_trips_strict(trend, tmp_path):
    _write(tmp_path, "canary", {
        "rollout": {"status": "fail", "promoted": 0},
    })
    assert trend.main(["--dir", str(tmp_path), "--strict"]) == 1


def test_nested_metrics_fold_with_dotted_keys(trend):
    record = {
        "pass": True,
        "throughput": 3.25,
        "identity_gate": "skipped (1 CPU(s) visible)",
        "swap": {"pass": True, "paused_ms": 2.5, "workers": 4,
                 "note_gate": "ok", "status": "pass",
                 "detail": {"too": "deep"}},
        "workers": 8,  # config, not outcome
    }
    metrics = trend.headline_metrics(record)
    assert metrics["throughput"] == 3.25
    assert metrics["identity_gate"].startswith("skipped")
    assert metrics["swap.pass"] is True
    assert metrics["swap.paused_ms"] == 2.5
    assert metrics["swap.note_gate"] == "ok"
    assert metrics["swap.status"] == "pass"
    assert "swap.workers" not in metrics  # config keys filtered at both levels
    assert "workers" not in metrics
    assert "swap.detail" not in metrics  # only one level folds
    assert trend.nested_failures(record) == []
