"""Elastic sharded serving: randomized churn fuzz + snapshot-codec properties.

The acceptance bar, from the churn side: for **any** seeded interleaving of
``open_stream`` / ``close_stream`` / ``migrate_stream`` / ``rescale`` /
``swap_model`` ops over live streams, every stream's emissions must be
bit-identical to the batch ``prefetch_lists`` oracle (the PR-4
serving-conformance oracle), with exactly one emission per access, ascending
seq — and ``close()`` must unlink every shared-memory segment and reap every
worker even when a schedule is killed mid-migration.

From the codec side: ``StreamState.freeze() -> bytes -> thaw()`` must be
bit-identical for randomized ring fill levels, pending-queue depths and
preprocessing geometries (the fuzz style of ``tests/test_shm.py``), and a
thawed stream must continue serving exactly like the uninterrupted one.

CI runs this file under ``PYTHONHASHSEED=0`` in the ``churn`` job; the fuzz
is deterministic either way (all randomness flows from seeded Generators).
"""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.data import PreprocessConfig
from repro.runtime import ShardFailure, StreamState, snapshot_from_bytes, snapshot_to_bytes

# ---------------------------------------------------------------- fuzz scale
#: seeded schedules per pytest param (engines are reused across a block's
#: schedules, so the fleet accumulates real churn history instead of starting
#: pristine 200 times)
SCHEDULES_PER_BLOCK = 10
N_BLOCKS = 20  # total schedules = 200
OPS_PER_SCHEDULE = 40
MAX_LIVE_STREAMS = 4
MAX_WORKERS = 3
TRACE_LEN = 150
BATCH = 8


@pytest.fixture(scope="module")
def trace_pool(libquantum_traces):
    return libquantum_traces(6, TRACE_LEN, 60)


@pytest.fixture(scope="module")
def oracle_pool(dart, trace_pool):
    """Batch prefetch_lists per pooled trace: the conformance ground truth."""
    return [dart.prefetch_lists(t) for t in trace_pool]


class _FuzzStream:
    """One live stream of a churn schedule: its trace, cursor and emissions."""

    def __init__(self, handle, trace_idx: int):
        self.handle = handle
        self.trace_idx = trace_idx
        self.cursor = 0
        self.emitted: dict[int, list[int]] = {}
        self.last_seq = -1

    def record(self, emissions) -> None:
        for em in emissions:
            assert em.seq > self.last_seq, (
                f"stream {self.handle.name}: emission seq {em.seq} after "
                f"{self.last_seq} (reordered)"
            )
            assert em.seq not in self.emitted, (
                f"stream {self.handle.name}: duplicate emission for seq {em.seq}"
            )
            self.last_seq = em.seq
            self.emitted[em.seq] = list(em.blocks)


def _verify_closed(fs: _FuzzStream, oracles, label: str) -> None:
    """After close: exactly one emission per ingested access, oracle-equal."""
    oracle = oracles[fs.trace_idx]
    assert sorted(fs.emitted) == list(range(fs.cursor)), (
        f"{label}: stream {fs.handle.name} ingested {fs.cursor} accesses but "
        f"emitted for seqs {sorted(fs.emitted)[:5]}..."
    )
    for seq in range(fs.cursor):
        assert fs.emitted[seq] == oracle[seq], (
            f"{label}: stream {fs.handle.name} diverged from the batch oracle "
            f"at seq {seq}"
        )


def _run_schedule(engine, rng, dart, trace_pool, oracles, label: str) -> dict:
    """One randomized interleaving of churn ops; verifies on every close."""
    live: list[_FuzzStream] = []
    counts = {"pump": 0, "open": 0, "close": 0, "migrate": 0, "rescale": 0, "swap": 0}

    def open_stream():
        fs = _FuzzStream(engine.open_stream(), int(rng.integers(len(trace_pool))))
        live.append(fs)
        counts["open"] += 1

    def close_stream(fs: _FuzzStream):
        fs.record(engine.close_stream(fs.handle))
        _verify_closed(fs, oracles, label)
        live.remove(fs)
        counts["close"] += 1

    open_stream()  # every schedule starts with at least one tenant
    for _ in range(OPS_PER_SCHEDULE):
        roll = rng.random()
        if roll < 0.70 or not live:
            if not live:
                open_stream()
                continue
            fs = live[int(rng.integers(len(live)))]
            trace = trace_pool[fs.trace_idx]
            for _ in range(int(rng.integers(1, 9))):
                if fs.cursor >= len(trace):
                    break
                i = fs.cursor
                fs.cursor += 1
                fs.record(fs.handle.ingest(int(trace.pcs[i]), int(trace.addrs[i])))
            counts["pump"] += 1
        elif roll < 0.78:
            if len(live) < MAX_LIVE_STREAMS:
                open_stream()
        elif roll < 0.84:
            close_stream(live[int(rng.integers(len(live)))])
        elif roll < 0.91:
            fs = live[int(rng.integers(len(live)))]
            info = engine.migrate_stream(fs.handle, int(rng.integers(engine.workers)))
            if info["from"] != info["to"]:  # same-worker target is a no-op
                counts["migrate"] += 1
        elif roll < 0.96:
            engine.rescale(int(rng.integers(1, MAX_WORKERS + 1)))
            counts["rescale"] += 1
        else:
            # Version-bump hot swap of the same tables: must be a no-op for
            # every stream's emissions, mid-churn.
            art = engine._fuzz_artifact
            art = art.successor(art.model, reason="fuzz-rotate")
            engine.swap_model(art)
            engine._fuzz_artifact = art
            counts["swap"] += 1
    for fs in list(live):
        close_stream(fs)
    assert engine.n_streams == 0
    return counts


@pytest.mark.parametrize("block", range(N_BLOCKS))
def test_churn_fuzz_bit_identical_to_batch_oracle(
    dart, trace_pool, oracle_pool, block
):
    """200 seeded open/close/migrate/rescale/swap schedules, oracle-identical."""
    rng = np.random.default_rng(5000 + block)
    totals = {"pump": 0, "open": 0, "close": 0, "migrate": 0, "rescale": 0, "swap": 0}
    engine = dart.sharded(workers=2, batch_size=BATCH, io_chunk=4)
    engine._fuzz_artifact = dart.artifact
    with engine:
        for sched in range(SCHEDULES_PER_BLOCK):
            counts = _run_schedule(
                engine, rng, dart, trace_pool, oracle_pool,
                label=f"block {block} schedule {sched}",
            )
            for k, v in counts.items():
                totals[k] += v
        stats = engine.stats()["elastic"]
    # The block genuinely churned (not a degenerate pump-only run) and the
    # engine's own accounting agrees with the schedule's.
    assert stats["opened"] == totals["open"] == stats["closed"]
    assert stats["rescales"] == totals["rescale"]
    # rescale-shrink migrations ride on migrate_stream too
    assert stats["migrations"] >= totals["migrate"]
    assert totals["migrate"] > 0 and totals["rescale"] > 0 and totals["close"] > 0


# ------------------------------------------------------------ crash injection
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_schedule_interrupted_mid_migration_still_cleans_up(
    dart, trace_pool, seed
):
    """Kill the migration source mid-schedule: a named ShardFailure, then
    close() unlinks every segment and reaps every worker — including workers
    added by an earlier rescale."""
    rng = np.random.default_rng(7100 + seed)
    engine = dart.sharded(workers=2, batch_size=BATCH, io_chunk=4)
    try:
        handles = [engine.open_stream(f"c{i}") for i in range(3)]
        for i in range(int(rng.integers(30, 90))):
            for h, t in zip(handles, trace_pool):
                h.ingest(int(t.pcs[i]), int(t.addrs[i]))
        engine.rescale(3)  # the grown worker must be reaped too
        victim = handles[int(rng.integers(len(handles)))]
        engine._shards[victim.shard_id].process.kill()
        engine._shards[victim.shard_id].process.join(timeout=5.0)
        with pytest.raises(ShardFailure) as exc:
            engine.migrate_stream(victim, (victim.shard_id + 1) % engine.workers)
        assert victim.index in exc.value.stream_ids
        names = [pub.name for pub in engine._publications]
        procs = [s.process for s in engine._shards]
        assert names and len(procs) == 3
    finally:
        engine.close()
    for name in names:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)
    assert all(not p.is_alive() for p in procs)


def test_worker_death_after_churn_still_raises_named_failure(dart, trace_pool):
    """Regression: retired slots (close/migrate placeholders) must not break
    ShardFailure construction — the failure names only the live streams."""
    engine = dart.sharded(workers=2, batch_size=BATCH, io_chunk=4)
    try:
        a, b, c = (engine.open_stream(f"d{i}") for i in range(3))  # w0: a, c
        for i in range(30):
            for h, t in zip((a, b, c), trace_pool):
                h.ingest(int(t.pcs[i]), int(t.addrs[i]))
        engine.close_stream(a)  # leaves a None placeholder on worker 0
        engine._shards[0].process.kill()
        engine._shards[0].process.join(timeout=5.0)
        with pytest.raises(ShardFailure) as exc:
            for i in range(30, 120):
                c.ingest(int(trace_pool[2].pcs[i]), int(trace_pool[2].addrs[i]))
            engine.flush_all()
        assert exc.value.stream_ids == [c.index]
        assert exc.value.stream_names == [c.name]
    finally:
        engine.close()


def test_migration_onto_dead_target_names_the_lost_stream(dart, trace_pool):
    """Regression: a dead thaw target makes the migrating stream a casualty —
    named in the ShardFailure, sealed, and the source shard keeps serving."""
    engine = dart.sharded(workers=2, batch_size=BATCH, io_chunk=4)
    try:
        a, b = engine.open_stream("mover"), engine.open_stream("stays")  # w0/w1
        c = engine.open_stream("neighbour")  # w0, shares the source shard
        collected = {}
        for i in range(40):
            a.ingest(int(trace_pool[0].pcs[i]), int(trace_pool[0].addrs[i]))
            for em in c.ingest(int(trace_pool[2].pcs[i]), int(trace_pool[2].addrs[i])):
                collected[em.seq] = list(em.blocks)
        engine._shards[1].process.kill()
        engine._shards[1].process.join(timeout=5.0)
        with pytest.raises(ShardFailure) as exc:
            engine.migrate_stream(a, 1)
        assert a.index in exc.value.stream_ids  # the in-flight casualty
        assert b.index in exc.value.stream_ids  # the dead worker's tenant
        # The casualty is sealed; the dead worker's tenant stays registered
        # (shard failure is sticky, not an implicit close — PR-4 semantics).
        assert a.closed and not b.closed
        assert engine.n_streams == 2
        # The healthy source shard serves on: its surviving tenant stays
        # oracle-identical (the retired slot is never touched again).
        oracle = dart.prefetch_lists(trace_pool[2])
        for i in range(40, 120):
            for em in c.ingest(int(trace_pool[2].pcs[i]), int(trace_pool[2].addrs[i])):
                collected[em.seq] = list(em.blocks)
        for em in engine.close_stream(c):
            collected[em.seq] = list(em.blocks)
        assert [collected[s] for s in range(120)] == oracle[:120]
    finally:
        engine.close()


def test_rescale_shrink_onto_dead_survivor_raises_and_cleans_up(dart, trace_pool):
    """A shrink whose migration target is dead must raise (not hang) and the
    doomed worker must stay engine-owned so close() reaps it."""
    engine = dart.sharded(workers=3, batch_size=BATCH, io_chunk=4)
    try:
        handles = [engine.open_stream(f"r{i}") for i in range(3)]
        for i in range(40):
            for h, t in zip(handles, trace_pool):
                h.ingest(int(t.pcs[i]), int(t.addrs[i]))
        engine._shards[0].process.kill()
        engine._shards[0].process.join(timeout=5.0)
        with pytest.raises(ShardFailure):
            engine.rescale(1)  # streams of workers 1/2 must land on dead 0
        procs = [s.process for s in engine._shards]
        names = [pub.name for pub in engine._publications]
    finally:
        engine.close()
    assert all(not p.is_alive() for p in procs)
    for name in names:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


# ----------------------------------------------------- stats conservation
def test_latency_count_conserved_across_migration_and_rescale(dart, trace_pool):
    """A stream's latency sketch travels with it: counts are conserved."""
    engine = dart.sharded(workers=2, batch_size=BATCH, io_chunk=4)
    with engine:
        handles = [engine.open_stream(f"m{i}") for i in range(4)]
        for i in range(60):
            for h, t in zip(handles, trace_pool):
                h.ingest(int(t.pcs[i]), int(t.addrs[i]))
        engine.flush_all()
        before = {s.extra["stream"]: s.extra["latency_count"]
                  for s in engine.stream_stats()}
        assert sum(before.values()) == 4 * 60
        engine.migrate_stream(handles[0], 1)
        engine.rescale(3)
        engine.rescale(1)  # every stream migrates at least once here
        mid = {s.extra["stream"]: s.extra["latency_count"]
               for s in engine.stream_stats()}
        assert mid == before  # migration moved the sketches, losslessly
        for i in range(60, 100):
            for h, t in zip(handles, trace_pool):
                h.ingest(int(t.pcs[i]), int(t.addrs[i]))
        engine.flush_all()
        after = engine.stream_stats()
        assert {s.extra["stream"]: s.extra["latency_count"] for s in after} == {
            k: v + 40 for k, v in before.items()
        }
        assert all(s.accesses == 100 for s in after)
        # The shrink drained workers 1 and 2 onto worker 0: every stream not
        # already home there migrated, and each home-history matches its count.
        assert sum(s.extra["migrations"] for s in after) >= 3
        assert all(s.extra["shard"] == 0 for s in after)
        assert all(
            len(s.extra["homes"]) == 1 + s.extra["migrations"] for s in after
        )


# ------------------------------------------------------------ admission/close
def test_admission_routes_to_least_loaded_worker(dart):
    with dart.sharded(workers=2, batch_size=BATCH) as engine:
        a, b, c, d = (engine.open_stream() for _ in range(4))
        assert [a.shard_id, b.shard_id, c.shard_id, d.shard_id] == [0, 1, 0, 1]
        engine.close_stream(a)
        engine.close_stream(c)  # worker 0 now empty
        e = engine.open_stream()
        assert e.shard_id == 0  # least-loaded, not round-robin position
        f = engine.open_stream()
        assert f.shard_id == 0  # still lighter than worker 1 (2 live streams)


def test_close_drains_pending_and_seals_the_handle(dart, trace_pool):
    trace = trace_pool[0]
    oracle = dart.prefetch_lists(trace)
    with dart.sharded(workers=2, batch_size=64, io_chunk=8) as engine:
        h = engine.open_stream("drainme")
        got = {}
        n = 40  # past warm-up, far below B=64: the tail stays pending
        for i in range(n):
            for em in h.ingest(int(trace.pcs[i]), int(trace.addrs[i])):
                got[em.seq] = list(em.blocks)
        assert len(got) < n  # something really was pending at close
        for em in engine.close_stream(h):
            got[em.seq] = list(em.blocks)
        assert [got[s] for s in range(n)] == oracle[:n]
        assert h.closed
        with pytest.raises(ValueError, match="closed"):
            h.ingest(int(trace.pcs[n]), int(trace.addrs[n]))
        with pytest.raises(ValueError, match="closed"):
            engine.migrate_stream(h, 0)
        with pytest.raises(ValueError, match="closed"):
            engine.close_stream(h)


def test_close_before_start_still_answers_buffered_accesses(dart, trace_pool):
    """Regression: ingests buffered below io_chunk on a never-started fleet
    must still be answered by close (the fleet boots for the drain); a stream
    that never ingested closes without booting anything."""
    trace = trace_pool[0]
    oracle = dart.prefetch_lists(trace)
    engine = dart.sharded(workers=2, batch_size=64, io_chunk=256)
    try:  # no `with`: __enter__ would start the fleet up front
        idle = engine.open_stream("idle")
        h = engine.open_stream("buffered")
        assert engine.close_stream(idle) == []
        assert not engine._started  # an empty close must not boot the fleet
        got = {}
        n = 30  # far below io_chunk: every row stays in the send buffer
        for i in range(n):
            for em in h.ingest(int(trace.pcs[i]), int(trace.addrs[i])):
                got[em.seq] = list(em.blocks)
        assert not engine._started
        for em in engine.close_stream(h):
            got[em.seq] = list(em.blocks)
        assert [got.get(s) for s in range(n)] == oracle[:n]
    finally:
        engine.close()


def test_migration_pause_bounded_by_one_flush_batch(dart, trace_pool):
    """The snapshot carries at most one flush batch of pending queries."""
    trace = trace_pool[0]
    with dart.sharded(workers=2, batch_size=16, io_chunk=4) as engine:
        h = engine.open_stream()
        for i in range(120):
            h.ingest(int(trace.pcs[i]), int(trace.addrs[i]))
            if i in (40, 80, 119):
                info = engine.migrate_stream(h, 1 - h.shard_id)
                assert info["pending"] <= engine.batch_size
                assert info["bytes"] > 0


# -------------------------------------------------------- snapshot codec fuzz
def _random_filled_state(rng: np.random.Generator):
    """A StreamState at a random geometry, fill level and pending depth."""
    config = PreprocessConfig(
        history_len=int(rng.integers(4, 13)),
        window=int(rng.integers(2, 7)),
        delta_range=int(rng.choice([16, 32, 64])),
    )
    depth = int(rng.integers(1, 33))
    state = StreamState(config, depth=depth)
    n = int(rng.integers(0, 2 * state.cap + 1))  # may wrap the ring twice
    for _ in range(n):
        pc = int(rng.integers(0, 1 << 20)) << 2
        addr = int(rng.integers(0, 1 << 28))
        state.push(pc, addr)
        # Randomly "answer" queued queries to vary the pending depth the way
        # real flushes would (oldest first).
        if state.pending and rng.random() < 0.3:
            del state.pending[: int(rng.integers(1, len(state.pending) + 1))]
    return config, depth, state


@pytest.mark.parametrize("seed", range(25))
def test_snapshot_roundtrip_bit_identical(seed):
    rng = np.random.default_rng(9000 + seed)
    config, depth, state = _random_filled_state(rng)
    blob = snapshot_to_bytes(state.freeze())
    thawed = StreamState.thaw(config, depth, snapshot_from_bytes(blob))
    assert thawed.seq == state.seq
    assert thawed.pending == state.pending
    assert np.array_equal(thawed.addr_ring, state.addr_ring)
    assert np.array_equal(thawed.pc_ring, state.pc_ring)
    assert np.array_equal(thawed.anchors, state.anchors)
    assert thawed.cap == state.cap and thawed.t_hist == state.t_hist


def test_thaw_refuses_geometry_mismatch():
    rng = np.random.default_rng(1)
    config = PreprocessConfig(history_len=8, window=6, delta_range=32)
    state = StreamState(config, depth=8)
    snap = snapshot_from_bytes(snapshot_to_bytes(state.freeze()))
    with pytest.raises(ValueError, match="geometry"):
        StreamState.thaw(config, 16, snap)  # wrong depth -> wrong capacity
    other = PreprocessConfig(history_len=12, window=6, delta_range=32)
    with pytest.raises(ValueError, match="geometry"):
        StreamState.thaw(other, 8, snap)
    del rng


def test_snapshot_codec_named_framing_errors():
    config = PreprocessConfig(history_len=8, window=6, delta_range=32)
    blob = snapshot_to_bytes(StreamState(config, depth=4).freeze())
    with pytest.raises(ValueError, match="magic"):
        snapshot_from_bytes(b"NOTSNAP!" + blob[8:])
    with pytest.raises(ValueError, match="truncated"):
        snapshot_from_bytes(blob[: len(blob) // 2])
    with pytest.raises(ValueError, match="truncated"):
        snapshot_from_bytes(blob[:16])  # full header, manifest cut off
    with pytest.raises(ValueError, match="magic"):
        snapshot_from_bytes(blob[:12])  # shorter than the header itself
    # Tampered manifest format id.
    bad = bytearray(blob)
    import json

    mlen = int.from_bytes(blob[8:16], "little")
    manifest = json.loads(blob[16 : 16 + mlen])
    manifest["format"] = 99
    enc = json.dumps(manifest, sort_keys=True).encode()
    assert len(enc) >= mlen  # format widening keeps it at least as long
    bad = blob[:8] + len(enc).to_bytes(8, "little") + enc + blob[16 + mlen :]
    with pytest.raises(ValueError, match="format"):
        snapshot_from_bytes(bytes(bad))


# ------------------------------------------- in-process export/import parity
def test_export_import_continuation_is_bit_identical(dart, trace_pool):
    """Freeze mid-stream, thaw on a *different* engine, keep serving: the
    stitched emissions equal the uninterrupted oracle (the in-process core
    of what migrate_stream does across processes)."""
    trace = trace_pool[1]
    oracle = dart.prefetch_lists(trace)
    a = dart.multistream(batch_size=8)
    b = dart.multistream(batch_size=8)
    ha = a.streams(3)[1]  # a non-trivial slot, neighbours stay live
    got = {}
    cut = len(trace) // 2
    for i in range(cut):
        for em in ha.ingest(int(trace.pcs[i]), int(trace.addrs[i])):
            got[em.seq] = list(em.blocks)
    for em in ha.poll():
        got[em.seq] = list(em.blocks)
    hb = b.import_stream(a.export_stream(ha.index), name="thawed")
    assert hb.seq == cut
    assert ha.closed
    with pytest.raises(ValueError, match="closed"):
        ha.ingest(1, 2)
    for i in range(cut, len(trace)):
        for em in hb.ingest(int(trace.pcs[i]), int(trace.addrs[i])):
            got[em.seq] = list(em.blocks)
    for em in hb.flush():
        got[em.seq] = list(em.blocks)
    assert [got[s] for s in range(len(trace))] == oracle


def test_export_refuses_undelivered_emissions(dart, trace_pool):
    trace = trace_pool[0]
    engine = dart.multistream(batch_size=4)
    h0, h1 = engine.streams(2)
    for i in range(20):  # h1's flushes park answers in h0's outbox
        h0.ingest(int(trace.pcs[i]), int(trace.addrs[i]))
        h1.ingest(int(trace.pcs[i]), int(trace.addrs[i]))
    engine.flush_all()
    assert h0._outbox
    with pytest.raises(ValueError, match="undelivered"):
        engine.export_stream(h0.index)
    h0.poll()
    snap = engine.export_stream(h0.index)  # now fine
    assert snap["snapshot/seq"][0] == 20
