"""Sequence-level prefetch timeliness analysis."""

import numpy as np
import pytest

from repro.prefetch import (
    NextLinePrefetcher,
    PrecomputedPrefetcher,
    analyze_timeliness,
    compare_timeliness,
)
from repro.traces.trace import MemoryTrace


def _stream(n=500):
    blocks = np.arange(n, dtype=np.int64)
    return MemoryTrace(np.arange(1, n + 1) * 10, np.zeros(n, dtype=np.int64), blocks << 6)


def _fixed(lists, latency=0, name="fixed"):
    return PrecomputedPrefetcher([list(x) for x in lists], name=name, latency_cycles=latency)


def test_validation():
    with pytest.raises(ValueError):
        analyze_timeliness(_stream(10), NextLinePrefetcher(), cycles_per_access=0)


def test_oracle_far_lookahead_is_timely():
    tr = _stream(400)
    ba = tr.block_addrs
    lists = [[int(ba[i + 100])] if i + 100 < len(ba) else [] for i in range(len(ba))]
    rep = analyze_timeliness(tr, _fixed(lists), cycles_per_access=5, memory_latency=200)
    assert rep.timely == rep.total  # 100 accesses * 5 cy >> 200 cy
    assert rep.timely_fraction == 1.0
    assert float(np.median(rep.distances)) == 100.0


def test_next_line_on_stream_is_late_not_useless():
    tr = _stream(400)
    pf = NextLinePrefetcher(degree=1)
    pf.latency_cycles = 0
    rep = analyze_timeliness(tr, pf, cycles_per_access=5, memory_latency=200)
    assert rep.useless <= 1  # only the final access's prediction has no future
    assert rep.late > 0.9 * rep.total  # distance 1 -> 5 cycles << 200


def test_latency_reclassifies_timely_to_late():
    """The paper's core effect, in one assertion: same predictions, higher
    latency, timeliness collapses."""
    tr = _stream(400)
    ba = tr.block_addrs
    lists = [[int(ba[i + 50])] if i + 50 < len(ba) else [] for i in range(len(ba))]
    fast = analyze_timeliness(tr, _fixed(lists, latency=0), cycles_per_access=5)
    slow = analyze_timeliness(tr, _fixed(lists, latency=27_700, name="voyagerish"),
                              cycles_per_access=5)
    assert fast.timely_fraction > 0.9
    assert slow.timely_fraction == 0.0
    assert slow.late == slow.total - slow.useless - slow.redundant


def test_junk_predictions_are_useless():
    tr = _stream(200)
    lists = [[10**9 + i] for i in range(len(tr))]
    rep = analyze_timeliness(tr, _fixed(lists))
    assert rep.useless == rep.total


def test_repeated_requests_are_redundant():
    tr = _stream(200)
    lists = [[500] for _ in range(len(tr))]  # same block every access
    rep = analyze_timeliness(tr, _fixed(lists), redundancy_window=256)
    assert rep.redundant == rep.total - 1  # only the first counts


def test_distance_histogram_buckets_sum_to_used():
    tr = _stream(300)
    ba = tr.block_addrs
    lists = [[int(ba[i + 3])] if i + 3 < len(ba) else [] for i in range(len(ba))]
    rep = analyze_timeliness(tr, _fixed(lists))
    hist = rep.distance_histogram()
    assert sum(hist.values()) == len(rep.distances)
    assert hist["(2,4]"] == len(rep.distances)  # all at distance 3


def test_summary_and_compare():
    tr = _stream(200)
    pf1 = NextLinePrefetcher(degree=1)
    pf1.latency_cycles = 0
    reports = compare_timeliness(tr, [pf1, _fixed([[10**9]] * len(tr), name="junk")])
    assert [r.name for r in reports] == [pf1.name, "junk"]
    s = reports[0].summary()
    for key in ("total", "timely", "late", "useless", "timely_fraction"):
        assert key in s


def test_prediction_past_trace_end_is_useless():
    tr = _stream(50)
    lists = [[] for _ in range(len(tr))]
    lists[-1] = [int(tr.block_addrs[-1]) + 1]  # stream continues, trace ends
    rep = analyze_timeliness(tr, _fixed(lists))
    assert rep.useless == 1 and rep.total == 1
