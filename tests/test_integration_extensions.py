"""End-to-end integration across the extension systems.

Each test chains several subsystems the way a user would: trained DART
tables through the detailed hierarchy simulator, through the packed export,
under FDP throttling, and alongside the analysis tooling — catching interface
drift that per-module tests cannot see.
"""

import numpy as np
import pytest

from repro.prefetch import DARTPrefetcher, FeedbackThrottle, analyze_timeliness
from repro.sim import HierarchyConfig, LevelConfig, SimConfig, simulate, simulate_hierarchy
from repro.traces import load_any, make_workload, save_csv


@pytest.fixture(scope="module")
def dart_pf(tabular_student, preprocess_config):
    tab, _ = tabular_student
    return DARTPrefetcher(tab, preprocess_config, max_degree=2)


@pytest.fixture(scope="module")
def sim_trace():
    return make_workload("462.libquantum", scale=0.02, seed=5)


def test_dart_in_detailed_hierarchy(dart_pf, sim_trace):
    cfg = HierarchyConfig(
        l1d=LevelConfig(4 * 1024, 4, 5.0),
        l2=LevelConfig(16 * 1024, 4, 10.0),
        llc=LevelConfig(256 * 1024, 8, 20.0),
    )
    base = simulate_hierarchy(sim_trace, None, cfg)
    r = simulate_hierarchy(sim_trace, dart_pf, cfg)
    assert r.sim.prefetches_issued > 0
    assert r.llc.hit_rate >= base.llc.hit_rate
    assert r.sim.ipc >= base.sim.ipc * 0.95  # never a large regression


def test_dart_survives_packed_export_roundtrip(
    tmp_path, tabular_student, preprocess_config, sim_trace
):
    from repro.tabularization import export_packed, import_packed

    tab, _ = tabular_student
    path = tmp_path / "dart.bin"
    export_packed(tab, path, float_dtype="float64")
    back = import_packed(path)
    pf_a = DARTPrefetcher(tab, preprocess_config, max_degree=2)
    pf_b = DARTPrefetcher(back, preprocess_config, max_degree=2)
    assert pf_a.prefetch_lists(sim_trace) == pf_b.prefetch_lists(sim_trace)


def test_dart_under_fdp_throttle(dart_pf, sim_trace):
    throttle = FeedbackThrottle()
    r = simulate(sim_trace, dart_pf, SimConfig(), throttle=throttle)
    info = r.extra["throttle"]
    assert 1 <= info["final_degree"] <= 8
    assert r.prefetches_issued <= r.demand_accesses * 8


def test_csv_roundtrip_feeds_dart(tmp_path, dart_pf, sim_trace):
    path = tmp_path / "w.csv.gz"
    save_csv(sim_trace, path)
    back = load_any(path)
    lists = dart_pf.prefetch_lists(back)
    assert lists == dart_pf.prefetch_lists(sim_trace)


def test_timeliness_analysis_on_dart(dart_pf, sim_trace):
    base = simulate(sim_trace, None)
    cpa = base.cycles / max(base.demand_accesses, 1)
    rep = analyze_timeliness(sim_trace, dart_pf, cycles_per_access=cpa)
    assert rep.total > 0
    assert rep.timely + rep.late + rep.useless + rep.redundant == rep.total
    # DART's latency is double-digit cycles: timeliness must not collapse the
    # way a 27.7K-cycle predictor's does on the same distances.
    slow = analyze_timeliness(
        sim_trace,
        _Relabel(dart_pf, latency=27_700),
        cycles_per_access=cpa,
    )
    assert rep.timely >= slow.timely


class _Relabel:
    """Wrap a prefetcher with a different latency (for the contrast test)."""

    def __init__(self, inner, latency):
        self._inner = inner
        self.name = inner.name + "-slow"
        self.latency_cycles = latency
        self.storage_bytes = inner.storage_bytes

    def prefetch_lists(self, trace):
        return self._inner.prefetch_lists(trace)
