"""Banked DRAM model: row-buffer timing, bus serialization, mapping."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.dram import DRAMConfig, DRAMModel


CFG = DRAMConfig()


def test_first_access_is_row_miss():
    d = DRAMModel()
    done = d.access(0, 0.0)
    # closed bank: tRCD + tCAS + burst
    assert done == CFG.t_rcd + CFG.t_cas + CFG.t_burst
    assert d.stats.row_misses == 1


def test_row_hit_is_faster():
    d = DRAMModel()
    t1 = d.access(0, 0.0)
    t2 = d.access(0, t1)  # same block, same row: row hit
    assert d.stats.row_hits == 1
    assert (t2 - t1) == CFG.t_cas + CFG.t_burst


def test_row_conflict_is_slowest():
    d = DRAMModel()
    # Two blocks in the same bank but different rows: stride by
    # channels * ranks * banks * blocks_per_row blocks.
    stride = CFG.channels * CFG.ranks * CFG.banks * CFG.blocks_per_row
    t1 = d.access(0, 0.0)
    t2 = d.access(stride, t1)
    assert d.stats.row_conflicts == 1
    assert (t2 - t1) == CFG.t_rp + CFG.t_rcd + CFG.t_cas + CFG.t_burst


def test_sequential_blocks_interleave_channels():
    d = DRAMModel()
    ch0, _, _ = d.map_block(0)
    ch1, _, _ = d.map_block(1)
    assert ch0 != ch1


def test_mapping_deterministic_and_in_range():
    d = DRAMModel()
    for b in [0, 1, 17, 12345, 10**9]:
        ch, bank, row = d.map_block(b)
        assert d.map_block(b) == (ch, bank, row)
        assert 0 <= ch < CFG.channels
        assert 0 <= bank < CFG.total_banks
        assert 0 <= row < CFG.rows


def test_same_row_blocks_share_row():
    d = DRAMModel()
    stride = CFG.channels * CFG.ranks * CFG.banks  # next block in same bank
    _, bank0, row0 = d.map_block(0)
    _, bank1, row1 = d.map_block(stride)  # consecutive in-bank block
    assert bank0 == bank1 and row0 == row1


def test_bus_serializes_parallel_banks():
    """Row-parallel accesses to one channel still queue on the data bus."""
    d = DRAMModel()
    # All to channel 0, different banks: bank latency overlaps, bus does not.
    blocks = [b * CFG.channels for b in range(8)]
    done = [d.access(b, 0.0) for b in blocks]
    # completion times must be spaced at least t_burst apart (bus occupancy)
    gaps = np.diff(sorted(done))
    assert np.all(gaps >= CFG.t_burst - 1e-9)


def test_two_channels_double_throughput():
    d = DRAMModel()
    n = 32
    one_ch = [d.access(b * CFG.channels, 0.0) for b in range(n)]
    d2 = DRAMModel()
    both = [d2.access(b, 0.0) for b in range(n)]
    assert max(both) < max(one_ch)


def test_write_counts_separately():
    d = DRAMModel()
    d.access(0, 0.0, is_write=True)
    d.access(1, 0.0, is_write=False)
    assert d.stats.writes == 1 and d.stats.reads == 1
    assert d.stats.accesses == 2


def test_min_max_latency_bounds():
    d = DRAMModel()
    assert d.min_latency() < d.max_latency()
    assert d.min_latency() == CFG.t_cas + CFG.t_burst


def test_stats_dict_fields():
    d = DRAMModel()
    d.access(0, 0.0)
    s = d.stats.as_dict()
    assert s["reads"] == 1 and 0.0 <= s["row_hit_rate"] <= 1.0


def test_reset():
    d = DRAMModel()
    d.access(0, 0.0)
    d.reset()
    assert d.stats.accesses == 0
    assert d.access(0, 0.0) == CFG.t_rcd + CFG.t_cas + CFG.t_burst


def test_streaming_has_high_row_hit_rate():
    """A linear sweep revisits each row blocks_per_row times per bank."""
    d = DRAMModel()
    t = 0.0
    for b in range(4096):
        t = d.access(b, t)
    assert d.stats.row_hit_rate > 0.9


def test_random_access_has_low_row_hit_rate():
    d = DRAMModel()
    rng = np.random.default_rng(0)
    t = 0.0
    for b in rng.integers(0, 1 << 30, size=2048):
        t = d.access(int(b), t)
    assert d.stats.row_hit_rate < 0.2


@settings(max_examples=25, deadline=None)
@given(
    blocks=st.lists(st.integers(0, 1 << 40), min_size=1, max_size=100),
    start=st.floats(0, 1e6),
)
def test_property_completion_after_request(blocks, start):
    """An access can never complete before it was requested + min latency."""
    d = DRAMModel()
    t = start
    for b in blocks:
        done = d.access(b, t)
        assert done >= t + d.min_latency() - 1e-9
        t = done


@settings(max_examples=15, deadline=None)
@given(blocks=st.lists(st.integers(0, 1 << 20), min_size=2, max_size=60))
def test_property_stats_accounting(blocks):
    d = DRAMModel()
    t = 0.0
    for b in blocks:
        t = d.access(b, t)
    s = d.stats
    assert s.row_hits + s.row_misses + s.row_conflicts == len(blocks)
    assert s.accesses == len(blocks)
