"""Prefetch decode policies: distance-major vs confidence-major selection."""

import numpy as np
import pytest

from repro.data import PreprocessConfig, delta_to_bitmap_index
from repro.prefetch.nn_prefetcher import model_prefetch_lists
from repro.traces.generators import StreamPhase, compose_trace


class _FixedBitmapModel:
    """Emits one fixed probability row for every window."""

    def __init__(self, row):
        self.row = np.asarray(row, dtype=np.float64)

    def predict_proba(self, x_addr, x_pc, batch_size=512):
        return np.tile(self.row, (x_addr.shape[0], 1))


def _trace(n=200):
    return compose_trace([(StreamPhase(0, 10**6), n)], seed=0)


def _config():
    return PreprocessConfig(history_len=8, window=6, delta_range=16)


def test_distance_decode_prefers_far_deltas():
    cfg = _config()
    row = np.zeros(32)
    r = cfg.delta_range
    # +1 most confident, +6 least — distance decode must still pick far ones
    for d, p in [(1, 0.99), (2, 0.95), (5, 0.7), (6, 0.6)]:
        row[delta_to_bitmap_index(d, r)] = p
    tr = _trace()
    lists = model_prefetch_lists(
        tr, _FixedBitmapModel(row).predict_proba, cfg, max_degree=2, decode="distance"
    )
    ba = tr.block_addrs
    i = 50
    assert sorted(b - int(ba[i]) for b in lists[i]) == [5, 6]


def test_confidence_decode_prefers_probable_deltas():
    cfg = _config()
    row = np.zeros(32)
    r = cfg.delta_range
    for d, p in [(1, 0.99), (2, 0.95), (5, 0.7), (6, 0.6)]:
        row[delta_to_bitmap_index(d, r)] = p
    tr = _trace()
    lists = model_prefetch_lists(
        tr, _FixedBitmapModel(row).predict_proba, cfg, max_degree=2, decode="confidence"
    )
    ba = tr.block_addrs
    i = 50
    assert sorted(b - int(ba[i]) for b in lists[i]) == [1, 2]


def test_threshold_excludes_weak_bits_for_both_policies():
    cfg = _config()
    row = np.zeros(32)
    r = cfg.delta_range
    row[delta_to_bitmap_index(3, r)] = 0.9
    row[delta_to_bitmap_index(10, r)] = 0.4  # below threshold: never chosen
    tr = _trace()
    for decode in ("distance", "confidence"):
        lists = model_prefetch_lists(
            tr, _FixedBitmapModel(row).predict_proba, cfg, max_degree=4, decode=decode
        )
        ba = tr.block_addrs
        assert [b - int(ba[60]) for b in lists[60]] == [3]


def test_negative_deltas_supported():
    cfg = _config()
    row = np.zeros(32)
    r = cfg.delta_range
    row[delta_to_bitmap_index(-7, r)] = 0.9
    row[delta_to_bitmap_index(2, r)] = 0.9
    tr = _trace()
    lists = model_prefetch_lists(
        tr, _FixedBitmapModel(row).predict_proba, cfg, max_degree=2, decode="distance"
    )
    ba = tr.block_addrs
    deltas = sorted(b - int(ba[80]) for b in lists[80])
    assert deltas == [-7, 2]


def test_unknown_decode_rejected():
    cfg = _config()
    tr = _trace(50)
    with pytest.raises(ValueError):
        model_prefetch_lists(
            tr, _FixedBitmapModel(np.zeros(32)).predict_proba, cfg, decode="luck"
        )


def test_all_zero_predictions_produce_no_prefetches():
    cfg = _config()
    tr = _trace(60)
    lists = model_prefetch_lists(
        tr, _FixedBitmapModel(np.zeros(32)).predict_proba, cfg
    )
    assert all(not l for l in lists)
