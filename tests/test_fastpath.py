"""Single-query fast path: bit-identity, scratch reuse, refresh guards.

:class:`~repro.tabularization.fastpath.SingleQueryFastPath` replays the
generic batched query as a fused plan over preallocated scratch — worth
nothing unless the answer is *bitwise* the generic one, because the serving
conformance story (stream == batch oracle) rides on it. Every test here pins
equality with ``np.array_equal``, not allclose.
"""

from __future__ import annotations

import sys

import numpy as np
import pytest

from repro.tabularization import SingleQueryFastPath


@pytest.fixture(scope="module")
def tab(tabular_student):
    model, _ = tabular_student
    return model


@pytest.fixture(scope="module")
def queries(small_dataset):
    return small_dataset.x_addr[:200], small_dataset.x_pc[:200]


def test_query1_bitwise_identical_to_generic(tab, queries):
    xa, xp = queries
    ref = tab.query(xa, xp)
    for i in range(len(xa)):
        got = tab.query1(xa[i], xp[i])
        assert got.shape == ref[i].shape
        assert np.array_equal(got, ref[i]), f"row {i} diverged"


def test_query1_accepts_leading_batch_axis(tab, queries):
    xa, xp = queries
    a = tab.query1(xa[0], xp[0])
    b = tab.query1(xa[:1], xp[:1])
    assert np.array_equal(a, b)


def test_query1_rejects_wrong_history(tab, queries):
    xa, xp = queries
    with pytest.raises(ValueError):
        tab.query1(xa[0, :-1], xp[0])


def test_fast_path_is_cached(tab):
    fp = tab.fast_path()
    assert isinstance(fp, SingleQueryFastPath)
    assert tab.fast_path() is fp


def test_query_into_steady_state_allocates_nothing(tab, queries):
    """After warmup, repeated queries run entirely in preallocated scratch."""
    xa, xp = queries
    fp = tab.fast_path()
    out = np.empty((1, tab.model_config.bitmap_size), dtype=np.float64)
    for i in range(20):  # warm every lazily-built view/cache
        fp.query_into(xa[i], xp[i], out)
    before = sys.getallocatedblocks()
    for i in range(50):
        fp.query_into(xa[i % 20], xp[i % 20], out)
    after = sys.getallocatedblocks()
    # Python-frame churn allows a tiny wobble; 50 queries through the generic
    # path would allocate thousands of blocks.
    assert abs(after - before) < 50


def test_query_into_repeated_calls_stay_bitwise(tab, queries):
    xa, xp = queries
    fp = tab.fast_path()
    out = np.empty((1, tab.model_config.bitmap_size), dtype=np.float64)
    ref = tab.query(xa[:5], xp[:5])
    for _ in range(3):  # scratch reuse must not leak state across calls
        for i in range(5):
            fp.query_into(xa[i], xp[i], out)
            assert np.array_equal(out[0], ref[i])


def test_fast_path_tracks_inplace_table_rebuild(tab, queries):
    """An in-place kernel ``rebuild()`` must invalidate the gathered plans."""
    xa, xp = queries
    fp = tab.fast_path()
    fp.query_into(xa[0], xp[0], np.empty((1, tab.model_config.bitmap_size)))  # build caches
    head = tab.head_table
    old_table = head.table.copy()
    try:
        # Swap the head's table array (what a drift-refresh rebuild() does);
        # the plan must notice the new array and re-gather from it.
        head.table = old_table * 2.0
        got = tab.query1(xa[0], xp[0])
        ref = tab.query(xa[:1], xp[:1])[0]
        assert np.array_equal(got, ref)
    finally:
        head.table = old_table


def test_predict_proba_batch_one_matches_query1(tab, queries):
    xa, xp = queries
    probs = tab.predict_proba(xa[:8], xp[:8], batch_size=1)
    for i in range(8):
        assert np.array_equal(probs[i], tab.query1(xa[i], xp[i]))
