"""Rule-based prefetchers: BO, ISB, stride, next-line."""

import numpy as np
import pytest

from repro.prefetch import (
    BestOffsetPrefetcher,
    ISBPrefetcher,
    NextLinePrefetcher,
    PrecomputedPrefetcher,
    StridePrefetcher,
)
from repro.prefetch.bo import michaud_offsets
from repro.traces.generators import (
    PointerChasePhase,
    StreamPhase,
    compose_trace,
)
from repro.traces.trace import MemoryTrace


def _stream_trace(n=2000, stride=3):
    return compose_trace([(StreamPhase(0, 10**6, stride_blocks=stride), n)], seed=0)


def test_michaud_offsets_are_235_smooth():
    offs = michaud_offsets(limit=256, negatives=False)
    for o in offs:
        m = o
        for p in (2, 3, 5):
            while m % p == 0:
                m //= p
        assert m == 1
    assert 1 in offs and 256 in offs and 7 not in offs
    assert len(offs) == 52  # Michaud's published count for <=256


def test_bo_learns_stream_stride():
    # SCORE_MAX=31 needs ~31 passes over ~104 offsets => ~3.3K accesses of
    # warmup before the first tournament concludes.
    tr = _stream_trace(n=8000, stride=4)
    bo = BestOffsetPrefetcher()
    lists = bo.prefetch_lists(tr)
    ba = tr.block_addrs
    # After convergence the chosen offset must be a (timely) multiple of the
    # stride: the prefetched block is an actual upcoming demand block.
    aligned = total = 0
    for i in range(4500, 6000):
        for b in lists[i]:
            total += 1
            off = b - int(ba[i])
            aligned += off > 0 and off % 4 == 0
    assert total > 1000
    assert aligned / total > 0.9


def test_bo_turns_off_on_random():
    rng = np.random.default_rng(0)
    addrs = rng.integers(0, 1 << 40, size=4000) & ~np.int64(63)
    tr = MemoryTrace(np.arange(1, 4001) * 10, np.zeros(4000, dtype=np.int64), addrs)
    # Short tournaments (round_max=10) so the bad-score rule can trigger
    # within this trace (a full Michaud phase is ~100 * |offsets| accesses).
    bo = BestOffsetPrefetcher(round_max=10)
    lists = bo.prefetch_lists(tr)
    # With no learnable offset, BO's bad-score rule should disable prefetching
    # for most of the trace after the first tournament.
    empty_frac = sum(1 for l in lists[2000:] if not l) / 2000
    assert empty_frac > 0.5


def test_isb_learns_temporal_stream():
    ph = PointerChasePhase(0, 64, 10_000, pc=0x10, seed=1)
    tr = compose_trace([(ph, 640)], seed=0)
    isb = ISBPrefetcher(degree=1)
    lists = isb.prefetch_lists(tr)
    ba = tr.block_addrs
    correct = sum(
        1 for i in range(64, 639) if lists[i] and lists[i][0] == ba[i + 1]
    )
    assert correct > 400


def test_isb_needs_pc_locality():
    """Same addresses under rotating PCs must not form streams."""
    ph = PointerChasePhase(0, 32, 1000, seed=2)
    tr = compose_trace([(ph, 320)], seed=0)
    # scramble PCs so consecutive pairs never share one
    tr = MemoryTrace(tr.instr_ids, np.arange(320, dtype=np.int64), tr.addrs, tr.name)
    isb = ISBPrefetcher()
    lists = isb.prefetch_lists(tr)
    assert sum(len(l) for l in lists) == 0


def test_stride_prefetcher_confirms_then_fires():
    tr = _stream_trace(n=100, stride=2)
    sp = StridePrefetcher(degree=2)
    lists = sp.prefetch_lists(tr)
    assert lists[0] == [] and lists[1] == []  # needs confirmation
    ba = tr.block_addrs
    assert lists[10] == [int(ba[10]) + 2, int(ba[10]) + 4]


def test_stride_prefetcher_resets_on_stride_change():
    addrs = np.array([0, 2, 4, 6, 100, 107, 114], dtype=np.int64) * 64
    tr = MemoryTrace(np.arange(1, 8) * 10, np.zeros(7, dtype=np.int64), addrs)
    sp = StridePrefetcher()
    lists = sp.prefetch_lists(tr)
    assert lists[4] == []  # stride break: 6->100
    assert lists[6] == [114 + 7, 114 + 14]  # re-confirmed stride 7


def test_next_line():
    tr = _stream_trace(n=10, stride=1)
    nl = NextLinePrefetcher(degree=3)
    lists = nl.prefetch_lists(tr)
    ba = tr.block_addrs
    assert lists[0] == [int(ba[0]) + 1, int(ba[0]) + 2, int(ba[0]) + 3]


def test_precomputed_wrapper_validates_length():
    tr = _stream_trace(n=10)
    pf = PrecomputedPrefetcher([[1]] * 10, name="x", latency_cycles=5)
    assert pf.prefetch_lists(tr) == [[1]] * 10
    with pytest.raises(ValueError):
        PrecomputedPrefetcher([[1]] * 9).prefetch_lists(tr)


def test_describe_reports_table9_fields():
    bo = BestOffsetPrefetcher()
    d = bo.describe()
    assert d["name"] == "BO" and d["latency_cycles"] == 60
    assert ISBPrefetcher().describe()["latency_cycles"] == 30
