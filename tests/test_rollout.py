"""Canary fleet rollout: partial swaps, regression rollback, healthy promote.

The scenarios are deterministic by construction — synthetic traces with fixed
seeds, a deterministic engine, and a controller whose decisions depend only on
the observed access/emission sequence:

* an **injected regression** (the candidate's ``head/table`` rolled along the
  logit axis, so predictions still fire but land on the wrong bitmap deltas)
  must roll back: the canary cohort returns to the baseline, the control
  cohort never sees the bad tables, and **no emission is dropped or
  reordered** anywhere in the fleet;
* a **healthy candidate** (bit-identical tables, next version id) must
  promote fleet-wide and advance the bound registry ref to a delta successor
  of the old head;
* a **partial swap** of a bit-identical candidate must leave every stream's
  emissions bit-identical to a run that never swapped, while the engine
  tracks mixed per-worker generations and refcounts the shm segments.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.registry import FleetRollout, ModelRegistry, RolloutConfig
from repro.runtime import ModelArtifact
from repro.runtime.artifact import VERSION_KEY


# ------------------------------------------------------------------ helpers
def healthy_candidate(artifact: ModelArtifact) -> ModelArtifact:
    """Next version, bit-identical tables (a no-op re-fit)."""
    state = artifact.state()
    state[VERSION_KEY] = np.array([artifact.version + 1], dtype=np.int64)
    return ModelArtifact.from_state(state)


def broken_candidate(artifact: ModelArtifact) -> ModelArtifact:
    """Next version with ``head/table`` mirrored along the logit axis.

    Every lookup still produces confident scores — but each logit lands on
    the *mirrored* output bitmap position, so the canary keeps emitting
    prefetches while predicting backward deltas a forward-moving stream
    never demands. That is the regression shape a rollout must catch (a
    silently-wrong model, not a crashing one).
    """
    state = artifact.state()
    table = np.array(state["head/table"])
    state["head/table"] = np.ascontiguousarray(table[..., ::-1])
    state[VERSION_KEY] = np.array([artifact.version + 1], dtype=np.int64)
    return ModelArtifact.from_state(state)


def drive(engine, rollout, handles, traces, limit=None):
    """Interleave the traces' accesses round-robin through the fleet.

    Returns per-stream emission lists (ingest returns + final flush), the
    exactly-once accounting the assertions run on.
    """
    emissions = [[] for _ in handles]
    counts = [0] * len(handles)
    n = min(len(tr.pcs) for tr in traces) if limit is None else limit
    for i in range(n):
        for s, (h, tr) in enumerate(zip(handles, traces)):
            pc, addr = int(tr.pcs[i]), int(tr.addrs[i])
            ems = h.ingest(pc, addr)
            counts[s] += 1
            emissions[s].extend(ems)
            rollout.observe(h, pc, addr, ems)
    engine.flush_all()
    for s, h in enumerate(handles):
        emissions[s].extend(h.poll())
    return emissions, counts


def assert_exactly_once(emissions, counts) -> None:
    """One emission per access, ascending contiguous seq — nothing dropped."""
    for ems, n in zip(emissions, counts):
        assert [em.seq for em in ems] == list(range(n))


def rollout_config(**overrides) -> RolloutConfig:
    base = dict(
        canary_workers=1,
        check_every=32,
        min_samples=24,
        regression_drop=0.2,
        promote_after=10**9,  # never, unless a test lowers it
        lookahead=16,
        window=2048,
        result_window=512,
    )
    base.update(overrides)
    return RolloutConfig(**base)


def run_regression_scenario(dart, traces):
    baseline = dart.artifact
    with dart.sharded(workers=2, batch_size=16, max_wait=4, io_chunk=1) as engine:
        handles = engine.streams(2)
        rollout = FleetRollout(
            engine, broken_candidate(baseline), baseline, rollout_config()
        )
        rollout.start()
        assert rollout.state == "canary"
        assert engine.stats()["worker_versions"] == [2, 1]
        emissions, counts = drive(engine, rollout, handles, traces)
        stats = engine.stats()
    return rollout, emissions, counts, stats


# ---------------------------------------------------------------- rollback
def test_injected_regression_rolls_back(dart, libquantum_traces):
    traces = libquantum_traces(2, 600, 70)
    rollout, emissions, counts, stats = run_regression_scenario(dart, traces)
    assert rollout.state == "rolled_back"
    event = rollout.events[-1]
    assert event["action"] == "rollback" and event["verdict"] == "regression"
    assert event["restored_version"] == 1
    assert event["canary_accuracy"] < event["control_accuracy"] - 0.2
    # The whole fleet serves the baseline again; the control cohort never
    # left it (the regression was contained to the canary worker).
    assert stats["worker_versions"] == [1, 1]
    assert stats["swaps"] == 2  # canary install + rollback
    assert rollout.published is None
    assert_exactly_once(emissions, counts)


def test_rollback_is_deterministic(dart, libquantum_traces):
    """Same traces, same seeds -> byte-equal decision logs, twice."""
    traces = libquantum_traces(2, 600, 70)
    first = run_regression_scenario(dart, traces)
    second = run_regression_scenario(dart, traces)
    assert first[0].events == second[0].events
    assert first[0].summary() == second[0].summary()
    assert [[(e.seq, tuple(e.blocks)) for e in ems] for ems in first[1]] == \
           [[(e.seq, tuple(e.blocks)) for e in ems] for ems in second[1]]


# ----------------------------------------------------------------- promote
def test_healthy_candidate_promotes_and_advances_ref(dart, libquantum_traces, tmp_path):
    traces = libquantum_traces(2, 600, 70)
    baseline = dart.artifact
    reg = ModelRegistry(tmp_path / "reg")
    baseline_digest = baseline.publish(reg, name="serving")
    candidate = healthy_candidate(baseline)
    with dart.sharded(workers=2, batch_size=16, max_wait=4, io_chunk=1) as engine:
        handles = engine.streams(2)
        rollout = FleetRollout(
            engine, candidate, baseline,
            rollout_config(promote_after=240),
            registry=reg, ref="serving",
        )
        rollout.start()
        emissions, counts = drive(engine, rollout, handles, traces)
        stats = engine.stats()
        publications = len(engine._publications)
    assert rollout.state == "promoted"
    assert rollout.events[-1]["action"] == "promote"
    # Fleet-wide on the candidate, converged back to one generation.
    assert stats["worker_versions"] == [2, 2]
    assert stats["model_version"] == 2
    assert publications == 1  # superseded segments were refcounted away
    assert_exactly_once(emissions, counts)
    # The deployment log lives in the registry: ref advanced to a delta
    # successor of the old head.
    assert rollout.published is not None
    assert reg.resolve("serving") == rollout.published
    manifest = reg.manifest("serving")
    assert manifest["parent"] == baseline_digest
    assert manifest["artifact_version"] == 2
    restored = reg.get("serving")
    assert restored.version == 2
    a, b = restored.state(), candidate.state()
    assert all(np.asarray(a[k]).tobytes() == np.asarray(b[k]).tobytes() for k in a)


# ------------------------------------------------------------ partial swap
def test_partial_swap_is_invisible_to_serving(dart, libquantum_traces):
    """A cohort swap to bit-identical tables changes no emission anywhere."""
    traces = libquantum_traces(2, 400, 90)
    candidate = healthy_candidate(dart.artifact)

    def run(swap_points):
        with dart.sharded(workers=2, batch_size=16, max_wait=4, io_chunk=1) as engine:
            handles = engine.streams(2)
            out = [[] for _ in handles]
            for i in range(len(traces[0].pcs)):
                if i in swap_points:
                    engine.swap_model(candidate, workers=swap_points[i])
                for s, (h, tr) in enumerate(zip(handles, traces)):
                    out[s].extend(h.ingest(int(tr.pcs[i]), int(tr.addrs[i])))
            engine.flush_all()
            for s, h in enumerate(handles):
                out[s].extend(h.poll())
            stats = engine.stats()
            pubs = len(engine._publications)
        return out, stats, pubs

    plain, stats0, _ = run({})
    swapped, stats1, pubs1 = run({150: [0]})
    assert [[(e.seq, tuple(e.blocks)) for e in ems] for ems in plain] == \
           [[(e.seq, tuple(e.blocks)) for e in ems] for ems in swapped]
    assert stats0["worker_versions"] == [1, 1]
    # Mixed generations: worker 0 on v2, worker 1 still on the boot tables,
    # and both shm segments stay alive (each is still referenced).
    assert stats1["worker_versions"] == [2, 1]
    assert stats1["model_version"] == 1
    assert pubs1 == 2


def test_partial_swap_converges_and_retires_segments(dart, libquantum_traces):
    candidate = healthy_candidate(dart.artifact)
    with dart.sharded(workers=2, batch_size=16, io_chunk=1) as engine:
        engine.streams(2)
        engine.start()
        assert len(engine._publications) == 1
        engine.swap_model(candidate, workers=[0])
        assert len(engine._publications) == 2
        assert engine.stats()["worker_versions"] == [2, 1]
        engine.swap_model(candidate, workers=[1])
        # Fleet converged on one generation: it becomes the boot spec and
        # the superseded segments unlink.
        assert len(engine._publications) == 1
        stats = engine.stats()
    assert stats["worker_versions"] == [2, 2]
    assert stats["model_version"] == 2
    assert stats["swaps"] == 2


def test_swap_and_rollout_validation(dart):
    with dart.sharded(workers=2, batch_size=16) as engine:
        with pytest.raises(ValueError, match="workers=\\[\\] swaps nothing"):
            engine.swap_model(dart.artifact, workers=[])
        with pytest.raises(ValueError, match="out of range"):
            engine.swap_model(dart.artifact, workers=[5])
        with pytest.raises(ValueError, match="no control workers"):
            FleetRollout(
                engine, dart.artifact, dart.artifact,
                RolloutConfig(canary_workers=2),
            )
        with pytest.raises(ValueError, match="needs a ref name"):
            FleetRollout(
                engine, dart.artifact, dart.artifact,
                registry=object(),
            )
        rollout = FleetRollout(engine, dart.artifact, dart.artifact)
        rollout.start()
        with pytest.raises(ValueError, match="already canary"):
            rollout.start()
    with pytest.raises(ValueError):
        RolloutConfig(canary_workers=0)
    with pytest.raises(ValueError):
        RolloutConfig(regression_drop=-0.1)
