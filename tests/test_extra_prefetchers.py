"""Behavioral tests for the extended rule-based baselines (SPP, SMS, GHB,
Markov, Streamer): each must detect its signature pattern and stay silent (or
harmless) on patterns outside its reach."""

import numpy as np
import pytest

from repro.prefetch import (
    GHBPrefetcher,
    MarkovPrefetcher,
    SMSPrefetcher,
    SPPPrefetcher,
    StreamPrefetcher,
)
from repro.prefetch.spp import BLOCKS_PER_PAGE, update_signature
from repro.traces.trace import MemoryTrace


def _trace(blocks, pcs=None):
    blocks = np.asarray(blocks, dtype=np.int64)
    n = len(blocks)
    pcs = np.zeros(n, dtype=np.int64) if pcs is None else np.asarray(pcs, dtype=np.int64)
    return MemoryTrace(np.arange(1, n + 1) * 10, pcs, blocks << 6)


def _flat(lists):
    return [b for lst in lists for b in lst]


def _future_hit_rate(trace, lists, horizon=64):
    """Fraction of predictions that appear in the next `horizon` accesses."""
    blocks = trace.block_addrs
    hits = total = 0
    for i, lst in enumerate(lists):
        future = set(int(b) for b in blocks[i + 1 : i + 1 + horizon])
        for p in lst:
            total += 1
            hits += p in future
    return hits / total if total else 0.0


# --------------------------------------------------------------------- SPP
def test_spp_signature_update_bounded():
    sig = 0
    for d in [1, -3, 7, 100, -100]:
        sig = update_signature(sig, d)
        assert 0 <= sig < (1 << 12)


def test_spp_signature_distinguishes_sign():
    assert update_signature(0, 5) != update_signature(0, -5)


def test_spp_learns_unit_stride_within_page():
    # Two passes over sequential blocks in pages: second pass predicts ahead.
    blocks = list(range(0, 256)) + list(range(1024, 1280))
    tr = _trace(blocks)
    lists = SPPPrefetcher().prefetch_lists(tr)
    assert _future_hit_rate(tr, lists) > 0.8
    assert len(_flat(lists)) > 100


def test_spp_walk_depth_grows_with_confidence():
    """A long stable stream should trigger multi-step walks (depth > 1)."""
    blocks = list(range(0, 512))
    lists = SPPPrefetcher(max_depth=8).prefetch_lists(_trace(blocks))
    depths = [len(lst) for lst in lists]
    assert max(depths) > 1


def test_spp_respects_page_boundaries():
    blocks = list(range(0, 256))
    tr = _trace(blocks)
    lists = SPPPrefetcher().prefetch_lists(tr)
    for i, lst in enumerate(lists):
        page = int(tr.block_addrs[i]) // BLOCKS_PER_PAGE
        for p in lst:
            assert p // BLOCKS_PER_PAGE == page


def test_spp_threshold_validation():
    with pytest.raises(ValueError):
        SPPPrefetcher(threshold=0.0)
    with pytest.raises(ValueError):
        SPPPrefetcher(threshold=1.5)


def test_spp_quiet_on_random():
    rng = np.random.default_rng(0)
    blocks = rng.integers(0, 1 << 24, size=800)
    lists = SPPPrefetcher().prefetch_lists(_trace(blocks))
    # random pages never build confident signatures
    assert len(_flat(lists)) < 80


# --------------------------------------------------------------------- SMS
def test_sms_replays_footprint_on_trigger_recurrence():
    """Same PC touching offset 0 of fresh regions replays the learned
    footprint {0, 3, 7, 12}."""
    footprint = [0, 3, 7, 12]
    blocks, pcs = [], []
    for region in range(12):
        base = region * BLOCKS_PER_PAGE
        for k, off in enumerate(footprint):
            blocks.append(base + off)
            pcs.append(100 if k == 0 else 200 + k)
    tr = _trace(blocks, pcs)
    lists = SMSPrefetcher(active_regions=4).prefetch_lists(tr)
    assert _future_hit_rate(tr, lists, horizon=8) > 0.6
    preds = _flat(lists)
    assert preds  # later regions must be predicted
    # every prediction lands on a learned offset
    assert all(p % BLOCKS_PER_PAGE in footprint for p in preds)


def test_sms_no_predictions_without_history():
    blocks = list(range(0, 64))  # one region, first generation
    lists = SMSPrefetcher().prefetch_lists(_trace(blocks))
    assert _flat(lists) == []


def test_sms_max_degree_cap():
    blocks, pcs = [], []
    for region in range(8):
        base = region * BLOCKS_PER_PAGE
        for k in range(32):
            blocks.append(base + k)
            pcs.append(100 if k == 0 else 200)
    lists = SMSPrefetcher(active_regions=2, max_degree=5).prefetch_lists(_trace(blocks, pcs))
    assert max((len(lst) for lst in lists), default=0) <= 5


# --------------------------------------------------------------------- GHB
def test_ghb_validation():
    with pytest.raises(ValueError):
        GHBPrefetcher(localize="bogus")


def test_ghb_gdc_replays_delta_pattern():
    """Repeating delta cycle (1, 1, 5): G/DC must predict the continuation."""
    blocks = [0]
    for _ in range(120):
        for d in (1, 1, 5):
            blocks.append(blocks[-1] + d)
    tr = _trace(blocks)
    lists = GHBPrefetcher(localize="global", degree=3).prefetch_lists(tr)
    assert _future_hit_rate(tr, lists, horizon=8) > 0.9


def test_ghb_pcdc_separates_interleaved_streams():
    """Two interleaved per-PC strides confuse global deltas but not PC/DC."""
    n = 300
    blocks, pcs = [], []
    a, b = 0, 10**6
    for _ in range(n):
        a += 3
        blocks.append(a)
        pcs.append(1)
        b += 7
        blocks.append(b)
        pcs.append(2)
    tr = _trace(blocks, pcs)
    pc_lists = GHBPrefetcher(localize="pc", degree=2).prefetch_lists(tr)
    assert _future_hit_rate(tr, pc_lists, horizon=8) > 0.9


def test_ghb_names():
    assert GHBPrefetcher("global").name == "GHB-G/DC"
    assert GHBPrefetcher("pc").name == "GHB-PC/DC"


def test_ghb_bounded_buffer_forgets():
    """Patterns older than the GHB capacity cannot be replayed."""
    pattern = [0]
    for _ in range(20):
        for d in (2, 9):
            pattern.append(pattern[-1] + d)
    rng = np.random.default_rng(1)
    noise = list(rng.integers(10**7, 10**8, size=600))
    again = [p + 10**9 for p in pattern]
    tr = _trace(pattern + noise + again)
    lists = GHBPrefetcher(ghb_entries=64, degree=2).prefetch_lists(tr)
    tail = lists[len(pattern) + len(noise) :]
    # at most incidental predictions on the re-run: history was evicted
    assert _future_hit_rate(tr, lists, horizon=4) < 1.0


# ------------------------------------------------------------------ Markov
def test_markov_memorizes_exact_sequence():
    seq = [5, 17, 3, 99, 42] * 8
    tr = _trace(seq)
    lists = MarkovPrefetcher(degree=1).prefetch_lists(tr)
    # after the first cycle, each access predicts its historical successor
    assert _future_hit_rate(tr, lists, horizon=2) > 0.9


def test_markov_ranks_successors_by_frequency():
    # 1 -> 2 twice, 1 -> 3 once: degree-1 predicts 2.
    seq = [1, 2, 1, 3, 1, 2, 1]
    lists = MarkovPrefetcher(degree=1).prefetch_lists(_trace(seq))
    assert lists[-1] == [2]


def test_markov_capacity_bound():
    rng = np.random.default_rng(2)
    blocks = rng.integers(0, 10**6, size=2000)
    pf = MarkovPrefetcher(table_entries=128)
    pf.prefetch_lists(_trace(blocks))  # must not grow unbounded / crash


def test_markov_no_self_prediction_on_repeats():
    seq = [7] * 20
    lists = MarkovPrefetcher().prefetch_lists(_trace(seq))
    assert _flat(lists) == []  # same-block repeats train nothing


# ---------------------------------------------------------------- Streamer
def test_streamer_follows_ascending_stream():
    blocks = list(range(0, 400))
    tr = _trace(blocks)
    lists = StreamPrefetcher(degree=4).prefetch_lists(tr)
    assert _future_hit_rate(tr, lists, horizon=16) > 0.9
    assert len(_flat(lists)) > 300


def test_streamer_follows_descending_stream():
    blocks = list(range(4000, 3600, -1))
    tr = _trace(blocks)
    lists = StreamPrefetcher(degree=4).prefetch_lists(tr)
    assert _future_hit_rate(tr, lists, horizon=16) > 0.85


def test_streamer_needs_confirmation():
    blocks = [0, 1, 2]  # too short to confirm with confirm=4
    lists = StreamPrefetcher(confirm=4).prefetch_lists(_trace(blocks))
    assert _flat(lists) == []


def test_streamer_quiet_on_random():
    rng = np.random.default_rng(3)
    blocks = rng.integers(0, 1 << 30, size=500)
    lists = StreamPrefetcher().prefetch_lists(_trace(blocks))
    assert len(_flat(lists)) < 50


# ------------------------------------------------------------- integration
def test_all_new_prefetchers_run_on_workload():
    from repro.traces import make_workload

    tr = make_workload("462.libquantum", scale=0.01, seed=0)
    for pf in (
        SPPPrefetcher(),
        SMSPrefetcher(),
        GHBPrefetcher("global"),
        GHBPrefetcher("pc"),
        MarkovPrefetcher(),
        StreamPrefetcher(),
    ):
        lists = pf.prefetch_lists(tr)
        assert len(lists) == len(tr)
        d = pf.describe()
        assert d["latency_cycles"] >= 0 and d["name"]


def test_new_prefetchers_improve_streaming_ipc():
    """On an easy stream every stream-capable baseline must beat no-prefetch."""
    from repro.sim import ipc_improvement, simulate
    from repro.traces.generators import StreamPhase, compose_trace

    tr = compose_trace([(StreamPhase(0, 10**7, stride_blocks=1), 4000)], seed=0, mean_instr_gap=20)
    base = simulate(tr, None)
    for pf in (SPPPrefetcher(), StreamPrefetcher(), GHBPrefetcher("global")):
        r = simulate(tr, pf)
        assert ipc_improvement(r, base) > 0.0, pf.name
