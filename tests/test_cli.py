"""Command-line interface subcommands."""

import numpy as np
import pytest

from repro.cli import main
from repro.tabularization import save_tabular_model
from repro.traces import MemoryTrace


def test_trace_subcommand(tmp_path, capsys):
    out = tmp_path / "t.npz"
    rc = main(["trace", "619.lbm", "--scale", "0.01", "-o", str(out)])
    assert rc == 0
    assert out.exists()
    tr = MemoryTrace.load(out)
    assert len(tr) >= 1000
    assert "n_pages" in capsys.readouterr().out


def test_trace_unknown_workload():
    with pytest.raises(KeyError):
        main(["trace", "999.bogus"])


def test_configure_subcommand(capsys):
    rc = main(["configure", "100", "1000000"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "latency=97cyc" in out


def test_simulate_rule_based(capsys, tmp_path):
    rc = main(
        ["simulate", "--workload", "462.libquantum", "--scale", "0.02",
         "--prefetcher", "nextline"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "baseline" in out and "NextLine" in out


def test_simulate_from_saved_trace(tmp_path, capsys):
    trace_path = tmp_path / "trace.npz"
    main(["trace", "619.lbm", "--scale", "0.01", "-o", str(trace_path)])
    rc = main(["simulate", "--trace", str(trace_path), "--prefetcher", "stride"])
    assert rc == 0


def test_simulate_dart_requires_tables():
    with pytest.raises(SystemExit):
        main(["simulate", "--prefetcher", "dart", "--scale", "0.02"])


def test_simulate_dart_with_tables(tabular_student, tmp_path, capsys):
    # The conftest tabular model uses an 8-step history / 32-delta bitmap;
    # build a matching preprocess config through the CLI default path by
    # saving tables and pointing the simulator at them is exercised via the
    # prefetcher factory directly instead (the CLI default PreprocessConfig
    # targets the full-size model).
    tab, _ = tabular_student
    path = tmp_path / "tables.npz"
    save_tabular_model(tab, path)
    from repro.cli import _make_prefetcher

    pf = _make_prefetcher("dart", str(path))
    assert pf.name == "DART"
    assert pf.latency_cycles == int(round(tab.latency_cycles()))


def test_stream_subcommand_reports_and_writes_json(tmp_path, capsys):
    import json

    out = tmp_path / "stats.json"
    rc = main(
        ["stream", "--workload", "462.libquantum", "--scale", "0.02",
         "--prefetcher", "stride", "--compare-batch", "--json", str(out)]
    )
    assert rc == 0
    text = capsys.readouterr().out
    assert "throughput" in text and "bit-identical to batch" in text
    record = json.loads(out.read_text())
    assert record["identical_to_batch"] is True
    assert record["accesses"] >= 1000
    assert record["p50_us"] <= record["p99_us"]


def test_stream_subcommand_from_trace_file(tmp_path):
    trace_path = tmp_path / "trace.npz"
    main(["trace", "619.lbm", "--scale", "0.01", "-o", str(trace_path)])
    rc = main(
        ["stream", "--trace", str(trace_path), "--prefetcher", "bo",
         "--chunk-size", "500", "--compare-batch"]
    )
    assert rc == 0


def test_stream_cores_serves_interleaved_shards(tmp_path, capsys):
    import json

    out = tmp_path / "stats.json"
    rc = main(
        ["stream", "--workload", "462.libquantum", "--scale", "0.02",
         "--prefetcher", "bo", "--cores", "3", "--compare-batch",
         "--json", str(out)]
    )
    assert rc == 0
    text = capsys.readouterr().out
    assert "3-stream serving" in text and "aggregate" in text
    record = json.loads(out.read_text())
    assert record["cores"] == 3 and record["share_model"] is False
    assert record["identical_to_batch"] is True
    assert len(record["per_stream"]) == 3
    assert record["aggregate"]["accesses"] == sum(
        s["accesses"] for s in record["per_stream"]
    )


def test_stream_workers_serves_sharded(tabular_student, tmp_path, capsys):
    """``stream --workers 2`` runs the multi-process engine end to end, with
    the bit-identity gate (--compare-batch) and a JSON artifact."""
    import json

    tab, _ = tabular_student
    tables = tmp_path / "tables.npz"
    save_tabular_model(tab, tables)
    out = tmp_path / "sharded.json"
    rc = main(
        ["stream", "--workload", "462.libquantum", "--scale", "0.02",
         "--prefetcher", "dart", "--tables", str(tables),
         "--workers", "2", "--cores", "4", "--batch-size", "32",
         "--compare-batch", "--json", str(out)]
    )
    assert rc == 0
    text = capsys.readouterr().out
    assert "2 worker" in text and "bit-identical to solo batch" in text
    record = json.loads(out.read_text())
    assert record["identical_to_batch"] is True
    assert record["workers"] == 2 and record["cores"] == 4
    assert record["engine"]["model_copies"] == 1
    assert record["engine"]["shm_bytes"] > 0
    assert len(record["per_stream"]) == 4


def test_stream_churn_elastic_scenario(tabular_student, tmp_path, capsys):
    """``stream --workers 2 --churn`` drives the elastic lifecycle end to end
    (open/migrate/swap/rescale/close) with the bit-identity gate."""
    import json

    tab, _ = tabular_student
    tables = tmp_path / "tables.npz"
    save_tabular_model(tab, tables)
    out = tmp_path / "churn.json"
    rc = main(
        ["stream", "--workload", "462.libquantum", "--scale", "0.01",
         "--prefetcher", "dart", "--tables", str(tables),
         "--workers", "2", "--batch-size", "16",
         "--churn", "--compare-batch", "--json", str(out)]
    )
    assert rc == 0
    text = capsys.readouterr().out
    assert "elastic churn" in text
    assert "bit-identical to batch under churn: True" in text
    record = json.loads(out.read_text())
    assert record["identical_to_batch"] is True
    ops = [e["op"] for e in record["events"]]
    assert {"open", "migrate", "rescale", "swap"} <= set(ops)
    assert record["engine"]["elastic"]["opened"] == record["engine"]["elastic"]["closed"] == 3
    assert record["engine"]["swaps"] == 1


def test_stream_workers_flag_validation():
    with pytest.raises(SystemExit):
        main(["stream", "--workers", "0", "--prefetcher", "bo"])
    with pytest.raises(SystemExit):  # churn needs the sharded fleet
        main(["stream", "--churn", "--prefetcher", "dart", "--scale", "0.01"])
    with pytest.raises(SystemExit):  # rule-based prefetchers cannot shard
        main(["stream", "--workers", "2", "--prefetcher", "bo", "--scale", "0.01"])
    with pytest.raises(SystemExit):  # sharding already shares the model
        main(["stream", "--workers", "2", "--cores", "2", "--share-model",
              "--prefetcher", "dart", "--scale", "0.01"])


def test_stream_share_model_requires_model_backed():
    with pytest.raises(SystemExit):
        main(
            ["stream", "--workload", "462.libquantum", "--scale", "0.02",
             "--prefetcher", "bo", "--cores", "2", "--share-model"]
        )


def test_stream_share_model_requires_multiple_cores():
    with pytest.raises(SystemExit):
        main(
            ["stream", "--workload", "462.libquantum", "--scale", "0.02",
             "--prefetcher", "bo", "--share-model"]
        )


def test_multicore_share_model_requires_model_backed():
    with pytest.raises(SystemExit):
        main(
            ["multicore", "462.libquantum", "462.libquantum", "--scale", "0.02",
             "--prefetcher", "bo", "--share-model"]
        )


def test_unknown_prefetcher_rejected():
    from repro.cli import _make_prefetcher

    with pytest.raises(SystemExit):
        _make_prefetcher("oracle", None)


def test_contend_subcommand_writes_summary(tmp_path, capsys):
    out = tmp_path / "contend.json"
    rc = main(
        ["contend", "462.libquantum", "605.mcf", "--scale", "0.004",
         "--poison", "0", "--throttle", "--json", str(out)]
    )
    assert rc == 0
    text = capsys.readouterr().out
    assert "contention world" in text and "throttled" in text
    import json

    summary = json.loads(out.read_text())
    assert len(summary["tenants"]) == 2
    assert summary["throttle"]  # the controller's per-tenant summaries
    # Tenant 0 wears the poison marker in the table.
    assert "0: 462.libquantum*" in text


def test_contend_poison_requires_prefetching_tenant():
    with pytest.raises(SystemExit):
        main(["contend", "462.libquantum", "--scale", "0.004",
              "--prefetcher", "none", "--poison", "0"])


def test_replacement_flag_reaches_hierarchy(capsys):
    rc = main(["hierarchy", "--scale", "0.004", "--prefetcher", "none",
               "--replacement", "plru"])
    assert rc == 0
    assert "baseline" in capsys.readouterr().out


def test_replacement_flag_rejects_unknown_policy():
    with pytest.raises(SystemExit):
        main(["hierarchy", "--scale", "0.004", "--replacement", "bogus"])
