"""Faithful Voyager: vocabularies, dataset builder, training, prefetching."""

import numpy as np
import pytest

from repro.models import (
    N_OFFSETS,
    Vocab,
    VoyagerPredictor,
    VoyagerPrefetcher,
    VoyagerTrainConfig,
    build_voyager_dataset,
    next_address_accuracy,
    train_voyager,
)
from repro.traces.trace import MemoryTrace


def _trace(blocks, pcs=None):
    blocks = np.asarray(blocks, dtype=np.int64)
    n = len(blocks)
    pcs = np.zeros(n, dtype=np.int64) if pcs is None else np.asarray(pcs, dtype=np.int64)
    return MemoryTrace(np.arange(1, n + 1) * 10, pcs, blocks << 6)


def _cyclic_trace(n=600, period=6):
    """A strictly periodic address sequence: trivially learnable."""
    base = [7 * N_OFFSETS + 3, 7 * N_OFFSETS + 9, 8 * N_OFFSETS + 3,
            9 * N_OFFSETS + 1, 7 * N_OFFSETS + 30, 11 * N_OFFSETS + 5][:period]
    blocks = [base[i % period] for i in range(n)]
    return _trace(blocks)


# ------------------------------------------------------------------- vocab
def test_vocab_roundtrip_and_oov():
    v = Vocab(np.array([5, 5, 5, 9, 9, 2]), max_size=16)
    ids = v.encode(np.array([5, 9, 2, 777]))
    assert ids[3] == 0  # OOV
    assert all(i > 0 for i in ids[:3])
    vals = v.decode(ids)
    assert vals.tolist()[:3] == [5, 9, 2]
    assert vals[3] == 0


def test_vocab_caps_by_frequency():
    values = np.array([1] * 10 + [2] * 5 + [3] * 1)
    v = Vocab(values, max_size=3)  # room for 2 real values + OOV
    assert len(v) == 3
    assert v.encode(np.array([1]))[0] > 0
    assert v.encode(np.array([2]))[0] > 0
    assert v.encode(np.array([3]))[0] == 0  # least frequent got dropped


def test_vocab_encode_preserves_shape():
    v = Vocab(np.arange(10))
    out = v.encode(np.arange(6).reshape(2, 3))
    assert out.shape == (2, 3)


# ----------------------------------------------------------------- dataset
def test_dataset_windows_and_labels():
    tr = _cyclic_trace(40, period=4)
    ds, pv, cv = build_voyager_dataset(tr, history_len=8)
    assert len(ds) == 40 - 8
    assert ds.pages.shape == (32, 8)
    # labels are the next access after each window
    blocks = tr.block_addrs
    np.testing.assert_array_equal(ds.y_offset, blocks[8:] & (N_OFFSETS - 1))


def test_dataset_with_existing_vocab_marks_oov():
    tr1 = _cyclic_trace(100)
    _, pv, cv = build_voyager_dataset(tr1, history_len=4)
    tr2 = _trace([10**6 * N_OFFSETS + 1] * 20)  # pages never seen in training
    ds2, _, _ = build_voyager_dataset(tr2, history_len=4, page_vocab=pv, pc_vocab=cv)
    assert np.all(ds2.pages == 0)


def test_dataset_too_short_trace():
    ds, _, _ = build_voyager_dataset(_cyclic_trace(5), history_len=8)
    assert len(ds) == 0


def test_dataset_max_samples():
    ds, _, _ = build_voyager_dataset(_cyclic_trace(200), history_len=4, max_samples=10)
    assert len(ds) == 10


# ------------------------------------------------------------------- model
def test_forward_shapes():
    m = VoyagerPredictor(n_pages=10, n_pcs=4, emb_dim=8, hidden_dim=12, rng=0)
    B, T = 3, 5
    zp, zo = m.forward(
        np.zeros((B, T), dtype=np.int64),
        np.zeros((B, T), dtype=np.int64),
        np.zeros((B, T), dtype=np.int64),
    )
    assert zp.shape == (3, 10) and zo.shape == (3, N_OFFSETS)


def test_training_reduces_loss_and_learns_cycle():
    tr = _cyclic_trace(500, period=4)
    ds, pv, cv = build_voyager_dataset(tr, history_len=4)
    m = VoyagerPredictor(len(pv), len(cv), emb_dim=8, hidden_dim=16, rng=0)
    hist = train_voyager(m, ds, VoyagerTrainConfig(epochs=8, batch_size=32, lr=5e-3, seed=0))
    assert hist[-1] < hist[0]
    acc = next_address_accuracy(m, ds)
    assert acc["address_acc"] > 0.9  # strictly periodic: must be memorized
    assert acc["page_acc"] >= acc["address_acc"]
    assert acc["offset_acc"] >= acc["address_acc"]


def test_predict_proba_rows_are_distributions():
    m = VoyagerPredictor(6, 3, emb_dim=4, hidden_dim=8)
    pp, po = m.predict_proba(
        np.zeros((4, 3), dtype=np.int64),
        np.zeros((4, 3), dtype=np.int64),
        np.zeros((4, 3), dtype=np.int64),
    )
    np.testing.assert_allclose(pp.sum(axis=1), 1.0)
    np.testing.assert_allclose(po.sum(axis=1), 1.0)


def test_predict_proba_empty():
    m = VoyagerPredictor(6, 3, emb_dim=4, hidden_dim=8)
    pp, po = m.predict_proba(
        np.zeros((0, 3), dtype=np.int64),
        np.zeros((0, 3), dtype=np.int64),
        np.zeros((0, 3), dtype=np.int64),
    )
    assert pp.shape == (0, 6) and po.shape == (0, N_OFFSETS)


def test_gru_trunk_learns_cycle_too():
    tr = _cyclic_trace(400, period=4)
    ds, pv, cv = build_voyager_dataset(tr, history_len=4)
    m = VoyagerPredictor(len(pv), len(cv), emb_dim=8, hidden_dim=16, cell="gru", rng=0)
    hist = train_voyager(m, ds, VoyagerTrainConfig(epochs=8, batch_size=32, lr=5e-3, seed=0))
    assert hist[-1] < hist[0]
    assert next_address_accuracy(m, ds)["address_acc"] > 0.9


def test_invalid_cell_rejected():
    with pytest.raises(ValueError, match="cell"):
        VoyagerPredictor(4, 2, cell="rnn")


# -------------------------------------------------------------- prefetcher
@pytest.fixture(scope="module")
def trained_voyager():
    tr = _cyclic_trace(600, period=4)
    ds, pv, cv = build_voyager_dataset(tr, history_len=4)
    m = VoyagerPredictor(len(pv), len(cv), emb_dim=8, hidden_dim=16, rng=0)
    train_voyager(m, ds, VoyagerTrainConfig(epochs=8, batch_size=32, lr=5e-3, seed=0))
    return m, pv, cv


def test_prefetcher_predicts_future_accesses(trained_voyager):
    m, pv, cv = trained_voyager
    tr = _cyclic_trace(300, period=4)
    pf = VoyagerPrefetcher(m, pv, cv, history_len=4, degree=1)
    lists = pf.prefetch_lists(tr)
    assert len(lists) == len(tr)
    assert all(lists[i] == [] for i in range(3))  # no full history yet
    blocks = tr.block_addrs
    hits = total = 0
    for i, lst in enumerate(lists):
        for p in lst:
            total += 1
            hits += p in set(int(b) for b in blocks[i + 1 : i + 4])
    assert total > 0
    assert hits / total > 0.8


def test_prefetcher_on_unseen_pages_is_quiet_or_harmless(trained_voyager):
    m, pv, cv = trained_voyager
    tr = _trace([10**7 * N_OFFSETS + k for k in range(64)])  # all OOV pages
    pf = VoyagerPrefetcher(m, pv, cv, history_len=4, degree=2)
    lists = pf.prefetch_lists(tr)
    # no prediction may materialize an OOV page (decoded page value 0 excluded)
    for lst in lists:
        for p in lst:
            assert p >> 6 != 0 or p == 0


def test_prefetcher_describe_and_table_ix_defaults(trained_voyager):
    m, pv, cv = trained_voyager
    pf = VoyagerPrefetcher(m, pv, cv)
    assert pf.latency_cycles == 27_700
    assert pf.storage_bytes == pytest.approx(14.9e6)
    ideal = VoyagerPrefetcher(m, pv, cv, name="Voyager-I", latency_cycles=0)
    assert ideal.latency_cycles == 0


def test_prefetcher_in_simulator(trained_voyager):
    from repro.sim import simulate

    m, pv, cv = trained_voyager
    tr = _cyclic_trace(400, period=4)
    pf = VoyagerPrefetcher(m, pv, cv, history_len=4, degree=1, latency_cycles=0)
    r = simulate(tr, pf)
    # The tiny cyclic working set is cache-resident after warmup, so every
    # prefetch is dropped as a duplicate — the dedup path must hold...
    assert r.prefetches_issued == 0
    assert r.demand_accesses == 400 and r.ipc > 0
    # ...while a cold cache (capacity 4 blocks) forces real issues.
    from repro.sim import SimConfig

    r2 = simulate(tr, pf, SimConfig(llc_capacity_bytes=4 * 64, llc_ways=1))
    assert r2.prefetches_issued > 0
