"""Content-addressed model registry: storage, deltas, lineage, sync, CLI.

Pins the registry subsystem's contracts:

* the blob store is content-addressed, integrity-checked, and crash-safe;
* successor versions store as row deltas and reconstruct **bit-identically**
  through arbitrarily deep lineage chains — including after the local cache
  is evicted and every object must be re-pulled from the remote;
* a 10-deep adaptation-style chain stores >= 5x smaller than ten full
  snapshots (the whole point of delta encoding);
* push/pull move exactly the missing objects; refs advance;
* ``ModelArtifact.save`` is atomic (a crashed save never leaves a torn file);
* the adaptation loop publishes its re-fits as delta successors;
* the ``repro registry`` CLI verbs drive all of it end to end.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.registry import (
    MODEL_WIRE_MAGIC,
    REGISTRY_MAGIC,
    FilesystemRemote,
    ModelRegistry,
    RegistryError,
    apply_state_delta,
    pack_arrays,
    sha256_digest,
    state_delta,
    unpack_arrays,
)
from repro.registry.store import BlobStore
from repro.runtime import ModelArtifact
from repro.runtime.artifact import VERSION_KEY


# ------------------------------------------------------------------ helpers
def assert_states_identical(a: dict, b: dict) -> None:
    """Byte-for-byte equality of two flat array states."""
    assert sorted(a) == sorted(b)
    for key in a:
        x, y = np.asarray(a[key]), np.asarray(b[key])
        assert x.dtype == y.dtype and x.shape == y.shape, key
        assert np.ascontiguousarray(x).tobytes() == np.ascontiguousarray(y).tobytes(), key


def perturbed_successor(artifact: ModelArtifact, seed: int, cells: int = 2) -> ModelArtifact:
    """The next version with a few entries of one table nudged (re-fit shaped).

    Edits land inside a single subspace row of ``addr/table``, so the delta
    codec stores one first-axis row of one array — the sparse-edit shape a
    window re-fit produces.
    """
    state = artifact.state()
    rng = np.random.default_rng(seed)
    key = "addr/table"
    arr = np.array(state[key], copy=True)
    idx = rng.choice(arr.shape[1], size=min(cells, arr.shape[1]), replace=False)
    arr[0, idx] += rng.normal(scale=0.05, size=arr[0, idx].shape).astype(arr.dtype)
    state[key] = arr
    state[VERSION_KEY] = np.array([artifact.version + 1], dtype=np.int64)
    return ModelArtifact.from_state(state)


def make_chain(artifact: ModelArtifact, depth: int) -> list[ModelArtifact]:
    chain = [artifact]
    for i in range(depth - 1):
        chain.append(perturbed_successor(chain[-1], seed=100 + i))
    return chain


# ------------------------------------------------------------------ store
def test_blob_store_roundtrip_dedup_and_integrity(tmp_path):
    store = BlobStore(tmp_path / "reg")
    data = b"the quick brown blob"
    digest = store.put(data)
    assert digest == sha256_digest(data)
    assert store.put(data) == digest  # dedup: same digest, one object
    assert store.digests() == [digest]
    assert store.get(digest) == data
    # Corrupt the object on disk: get() must refuse, not return garbage.
    path = store._path(digest)
    with open(path, "wb") as fh:
        fh.write(b"tampered")
    with pytest.raises(RegistryError, match="corrupt"):
        store.get(digest)
    with pytest.raises(RegistryError, match="malformed object digest"):
        store.get("not-a-digest")


def test_refs_are_movable_pointers(tmp_path):
    store = BlobStore(tmp_path / "reg")
    d1, d2 = store.put(b"one"), store.put(b"two")
    store.set_ref("serving", d1)
    assert store.get_ref("serving") == d1
    store.set_ref("serving", d2)  # refs move; objects never do
    assert store.refs() == {"serving": d2}
    for bad in ("", "a/b", ".hidden"):
        with pytest.raises(RegistryError, match="malformed ref name"):
            store.set_ref(bad, d1)
    assert store.get_ref("absent") is None


def test_no_temp_files_survive_writes(tmp_path):
    store = BlobStore(tmp_path / "reg")
    store.put(b"x" * 4096)
    store.set_ref("r", store.put(b"y"))
    leftovers = [p for p in (tmp_path / "reg").rglob(".tmp-*")]
    assert leftovers == []


# ------------------------------------------------------------------ codec
def test_container_families_do_not_cross(tmp_path):
    blob = pack_arrays({"a": np.arange(4)}, REGISTRY_MAGIC, what="registry blob")
    with pytest.raises(ValueError, match="not a model wire blob"):
        unpack_arrays(blob, MODEL_WIRE_MAGIC, what="model wire blob")
    arrays, meta = unpack_arrays(blob, REGISTRY_MAGIC, what="registry blob")
    assert np.array_equal(arrays["a"], np.arange(4)) and meta == {}
    with pytest.raises(ValueError, match="truncated registry blob"):
        unpack_arrays(blob[:-8], REGISTRY_MAGIC, what="registry blob")


# ------------------------------------------------------------------ deltas
def test_state_delta_roundtrip_preserves_exotic_floats():
    parent = {
        "t": np.zeros((16, 8)),
        "same": np.arange(6, dtype=np.int32),
        "gone": np.ones(3),
    }
    t2 = parent["t"].copy()
    t2[0, 0] = -0.0  # byte change, value-equal to 0.0
    t2[5, 3] = np.nan
    child = {"t": t2, "same": parent["same"], "new": np.full(2, 7.0)}
    delta = state_delta(parent, child)
    rec = apply_state_delta(parent, delta)
    assert_states_identical(rec, child)
    # -0.0 vs 0.0 is a byte change: the row must have been stored.
    assert np.array_equal(delta["delta/rows/t"], [0, 5])
    meta = json.loads(np.asarray(delta["delta/meta"], dtype=np.uint8).tobytes())
    assert meta["unchanged"] == ["same"] and meta["removed"] == ["gone"]


def test_state_delta_fuzz_roundtrip(rng):
    for trial in range(25):
        r = np.random.default_rng(5000 + trial)
        parent = {
            f"k{i}": r.normal(size=(int(r.integers(2, 30)), int(r.integers(1, 8))))
            for i in range(int(r.integers(1, 6)))
        }
        parent["ints"] = r.integers(0, 100, size=int(r.integers(2, 40)))
        child = {}
        for key, arr in parent.items():
            roll = r.random()
            if roll < 0.2:
                continue  # dropped key
            arr = np.array(arr, copy=True)
            if roll < 0.7:  # sparse row edits
                n = int(r.integers(0, max(1, arr.shape[0] // 3)))
                idx = r.choice(arr.shape[0], size=n, replace=False)
                arr[idx] = r.normal(size=arr[idx].shape) if arr.dtype.kind == "f" \
                    else r.integers(0, 100, size=arr[idx].shape)
            elif roll < 0.85:  # reshape: must fall back to full storage
                arr = arr.reshape(-1)
            child[key] = arr
        child["brand_new"] = r.normal(size=(3, 3))
        rec = apply_state_delta(parent, state_delta(parent, child))
        assert_states_identical(rec, child)


def test_apply_delta_to_wrong_parent_is_named():
    parent = {"t": np.zeros((4, 2)), "u": np.ones(3)}
    child = {"t": np.ones((4, 2)), "u": parent["u"]}
    delta = state_delta(parent, child)
    with pytest.raises(ValueError, match="wrong parent"):
        apply_state_delta({"t": np.zeros((4, 2))}, delta)  # no "u"
    with pytest.raises(ValueError, match="not a state delta"):
        apply_state_delta(parent, {"t": np.ones((4, 2))})


# ---------------------------------------------------------------- registry
def test_put_get_full_version_bit_identical(tmp_path, dart):
    reg = ModelRegistry(tmp_path / "reg")
    digest = dart.artifact.publish(reg, name="serving")
    assert reg.resolve("serving") == digest
    assert dart.artifact.publish(reg, name="serving") == digest  # deterministic
    m = reg.manifest("serving")
    assert m["kind"] == "full" and m["parent"] is None
    assert m["artifact_version"] == 1
    out = ModelArtifact.from_registry(reg, "serving")
    assert out.version == dart.artifact.version
    assert_states_identical(out.state(), dart.artifact.state())
    # Prefix resolution: a unique 12-hex prefix finds the version.
    assert reg.resolve(digest[:12]) == digest
    with pytest.raises(RegistryError, match="neither a known ref"):
        reg.resolve("no-such-ref")


def test_lineage_chain_bit_identical_and_small(tmp_path, dart):
    """10-deep delta chain: every intermediate exact, >= 5x storage win."""
    depth = 10
    chain = make_chain(dart.artifact, depth)
    reg = ModelRegistry(tmp_path / "reg")
    digests = [chain[0].publish(reg, name="serving")]
    for art in chain[1:]:
        digests.append(art.publish(reg, parent=digests[-1], name="serving"))
    history = reg.log("serving")
    assert [m["digest"] for m in history] == digests[::-1]
    assert history[-1]["kind"] == "full"
    assert all(m["kind"] == "delta" for m in history[:-1])
    for art, digest in zip(chain, digests):  # every intermediate, not just head
        assert_states_identical(reg.state(digest), art.state())
        assert reg.get(digest).version == art.version
    full_bytes = history[-1]["payload_bytes"]
    chain_bytes = sum(m["payload_bytes"] for m in history)
    assert depth * full_bytes >= 5 * chain_bytes, (
        f"delta chain stores {chain_bytes:,}B vs {depth}x full "
        f"{depth * full_bytes:,}B — less than the required 5x win"
    )
    stats = reg.stats()
    assert stats["versions"] == depth
    assert stats["payload_bytes"]["delta"] < stats["payload_bytes"]["full"]


def test_chain_survives_cache_eviction_via_remote(tmp_path, dart):
    """After evicting every local object, get() re-pulls and stays exact."""
    remote = FilesystemRemote(tmp_path / "remote")
    reg = ModelRegistry(tmp_path / "reg", remote=remote)
    chain = make_chain(dart.artifact, 6)
    digests = [chain[0].publish(reg, name="serving")]
    for art in chain[1:]:
        digests.append(art.publish(reg, parent=digests[-1], name="serving"))
    reg.push("serving")
    removed = reg.evict_local()
    assert removed > 0 and reg.store.digests() == []
    assert reg.pulled_blobs == 0
    out = reg.get("serving")  # ref survived; every object walks to the remote
    assert reg.pulled_blobs >= 2 * len(chain)  # manifests + payloads
    assert_states_identical(out.state(), chain[-1].state())
    for art, digest in zip(chain, digests):
        assert_states_identical(reg.state(digest), art.state())


def test_push_pull_between_registries(tmp_path, dart):
    remote = FilesystemRemote(tmp_path / "remote")
    src = ModelRegistry(tmp_path / "src", remote=remote)
    chain = make_chain(dart.artifact, 4)
    head = chain[0].publish(src, name="serving")
    for art in chain[1:]:
        head = art.publish(src, parent=head, name="serving")
    report = src.push("serving")
    assert report["ref"] == "serving" and report["pushed"] == 2 * len(chain)
    assert src.push("serving")["pushed"] == 0  # second push is a no-op
    dst = ModelRegistry(tmp_path / "dst", remote=remote)
    pulled = dst.pull("serving")
    assert pulled["head"] == head and pulled["pulled"] == 2 * len(chain)
    assert dst.resolve("serving") == head
    assert_states_identical(dst.state("serving"), chain[-1].state())
    with pytest.raises(RegistryError, match="neither a remote ref"):
        dst.pull("no-such-ref")
    bare = ModelRegistry(tmp_path / "bare")
    with pytest.raises(RegistryError, match="no remote"):
        bare.push("anything")


def test_manifest_rejects_non_manifest_objects(tmp_path, dart):
    reg = ModelRegistry(tmp_path / "reg")
    digest = dart.artifact.publish(reg)
    payload = reg.manifest(digest)["payload"]
    with pytest.raises(RegistryError, match="not a version manifest"):
        reg.manifest(payload)


# ------------------------------------------------------------- atomic save
def test_artifact_save_is_atomic(tmp_path, dart, monkeypatch):
    path = tmp_path / "tables.npz"
    dart.artifact.save(path)
    before = path.read_bytes()

    def torn_write(*args, **kwargs):
        raise RuntimeError("disk full mid-save")

    monkeypatch.setattr(np, "savez", torn_write)
    with pytest.raises(RuntimeError, match="disk full"):
        dart.artifact.save(path)
    monkeypatch.undo()
    # The old complete file survives untouched, and no temp junk remains.
    assert path.read_bytes() == before
    assert sorted(p.name for p in tmp_path.iterdir()) == ["tables.npz"]
    assert_states_identical(ModelArtifact.load(path).state(), dart.artifact.state())


# ------------------------------------------------- adaptation loop publishing
class _SwallowEngine:
    """A stand-in serving engine: accepts any swap, drains nothing."""

    def swap_model(self, target):
        self.target = target
        return []


def test_adaptation_controller_publishes_delta_successors(tmp_path, dart):
    from repro.runtime.adaptation import AdaptationConfig, AdaptationController

    reg = ModelRegistry(tmp_path / "reg")
    ctl = AdaptationController(
        _SwallowEngine(),
        refit=lambda pcs, addrs, seed: dart.predictor,
        config=AdaptationConfig(window=2048, feature_window=512, min_samples=8),
        artifact=dart.artifact,
        registry=reg,
        publish_ref="serving",
    )
    baseline = ctl.head_digest  # published eagerly at construction
    assert baseline is not None and reg.resolve("serving") == baseline
    drained = ctl._adapt("accuracy", detected_seq=0)
    assert drained == [] and ctl.adaptations == 1
    head = ctl.head_digest
    assert head != baseline and reg.resolve("serving") == head
    m = reg.manifest(head)
    assert m["parent"] == baseline and m["artifact_version"] == 2
    assert ctl.events[-1]["digest"] == head
    assert_states_identical(reg.state(head), ctl.artifact.state())


def test_adaptation_registry_requires_artifact():
    from repro.runtime.adaptation import AdaptationController

    with pytest.raises(ValueError, match="baseline artifact"):
        AdaptationController(
            _SwallowEngine(), refit=lambda *a: None, registry=object(),
        )


# --------------------------------------------------------------------- CLI
def test_cli_registry_verbs_end_to_end(tmp_path, dart, capsys):
    from repro.cli import main

    root = str(tmp_path / "reg")
    remote = str(tmp_path / "remote")
    v1 = tmp_path / "v1.npz"
    dart.artifact.save(v1)
    v2 = tmp_path / "v2.npz"
    perturbed_successor(dart.artifact, seed=9).save(v2)

    assert main(["registry", "put", str(v1), "--root", root, "--name", "serving"]) == 0
    out1 = capsys.readouterr().out
    assert "stored as full" in out1 and "ref serving" in out1
    assert main([
        "registry", "put", str(v2), "--root", root,
        "--name", "serving", "--parent", "serving",
    ]) == 0
    assert "stored as delta" in capsys.readouterr().out

    assert main(["registry", "log", "serving", "--root", root]) == 0
    log_out = capsys.readouterr().out
    assert "delta" in log_out and "full" in log_out

    out_npz = tmp_path / "checkout.npz"
    assert main([
        "registry", "checkout", "serving", "--root", root, "-o", str(out_npz),
    ]) == 0
    assert "artifact v2" in capsys.readouterr().out
    assert_states_identical(
        ModelArtifact.load(out_npz).state(), ModelArtifact.load(v2).state()
    )

    assert main(["registry", "push", "serving", "--root", root,
                 "--remote", remote]) == 0
    assert "4 objects uploaded" in capsys.readouterr().out

    root2 = str(tmp_path / "reg2")
    assert main(["registry", "pull", "serving", "--root", root2,
                 "--remote", remote]) == 0
    assert "4 objects fetched" in capsys.readouterr().out
    assert main(["registry", "checkout", "serving", "--root", root2,
                 "-o", str(tmp_path / "c2.npz")]) == 0
    capsys.readouterr()
    assert_states_identical(
        ModelArtifact.load(tmp_path / "c2.npz").state(),
        ModelArtifact.load(v2).state(),
    )
