"""Learned prefetchers (NN + DART) and the end-to-end pipeline."""

import numpy as np
import pytest

from repro.core import DARTPipeline
from repro.core.evaluate import f1_score, precision_recall_f1
from repro.data import PreprocessConfig
from repro.distillation import TrainConfig
from repro.models import ModelConfig
from repro.prefetch import DARTPrefetcher, NeuralPrefetcher
from repro.prefetch.nn_prefetcher import model_prefetch_lists
from repro.sim import simulate, ipc_improvement
from repro.traces import make_workload


# --------------------------------------------------------------- F1 metric
def test_f1_perfect_and_empty():
    y = np.array([[1.0, 0.0], [0.0, 1.0]])
    assert f1_score(y, y) == 1.0
    assert f1_score(np.zeros((2, 2)), np.zeros((2, 2))) == 1.0
    assert f1_score(y, np.zeros_like(y)) == 0.0


def test_precision_recall_components():
    y_true = np.array([[1.0, 1.0, 0.0, 0.0]])
    y_prob = np.array([[0.9, 0.1, 0.8, 0.1]])  # 1 TP, 1 FP, 1 FN
    p, r, f1 = precision_recall_f1(y_true, y_prob)
    assert p == pytest.approx(0.5) and r == pytest.approx(0.5) and f1 == pytest.approx(0.5)
    with pytest.raises(ValueError):
        precision_recall_f1(y_true, y_prob[:, :2])


# ----------------------------------------------------- learned prefetchers
class _OracleModel:
    """Predicts the delta bitmap perfectly from the (known) trace labels."""

    def __init__(self, labels, history_len):
        self.labels = labels
        self.history_len = history_len

    def predict_proba(self, x_addr, x_pc, batch_size=512):
        n = x_addr.shape[0]
        return self.labels[:n]


def test_model_prefetch_lists_alignment(small_trace, preprocess_config):
    from repro.data import build_dataset

    ds = build_dataset(small_trace.pcs, small_trace.addrs, preprocess_config)
    oracle = _OracleModel(ds.labels, preprocess_config.history_len)
    lists = model_prefetch_lists(
        small_trace, oracle.predict_proba, preprocess_config, max_degree=4
    )
    assert len(lists) == len(small_trace)
    t = preprocess_config.history_len
    assert all(not lists[i] for i in range(t - 1))  # warmup: no history yet
    ba = small_trace.block_addrs
    # an oracle prefetch must appear in the actual future window
    window = preprocess_config.window
    checked = 0
    for i in range(t - 1, min(len(lists) - window, t + 500)):
        future = set(ba[i + 1 : i + 1 + window].tolist())
        for blk in lists[i]:
            assert blk in future
            checked += 1
    assert checked > 100


def test_neural_prefetcher_wraps_model(trained_student, small_trace, preprocess_config):
    pf = NeuralPrefetcher(
        trained_student, preprocess_config, name="TransFetch", latency_cycles=4500,
        storage_bytes=13.8e6,
    )
    lists = pf.prefetch_lists(small_trace)
    assert len(lists) == len(small_trace)
    assert sum(len(l) for l in lists) > 0
    assert pf.describe()["latency_cycles"] == 4500


def test_dart_prefetcher_costs_derive_from_tables(tabular_student, preprocess_config):
    tab, _ = tabular_student
    dart = DARTPrefetcher(tab, preprocess_config)
    assert dart.latency_cycles == int(round(tab.latency_cycles()))
    assert dart.storage_bytes == tab.storage_bytes()
    assert dart.meets_constraints(dart.latency_cycles + 1, dart.storage_bytes + 1)
    assert not dart.meets_constraints(dart.latency_cycles - 1, dart.storage_bytes + 1)


def test_dart_prefetching_improves_ipc(tabular_student, small_trace, preprocess_config):
    """End to end: the tabular predictor must actually prefetch usefully."""
    tab, _ = tabular_student
    dart = DARTPrefetcher(tab, preprocess_config, max_degree=3)
    base = simulate(small_trace, None)
    r = simulate(small_trace, dart)
    assert r.prefetches_issued > 0
    assert ipc_improvement(r, base) > 0.0


# ------------------------------------------------------------ pipeline e2e
@pytest.mark.slow
def test_pipeline_end_to_end_smoke():
    trace = make_workload("462.libquantum", scale=0.02, seed=5)
    pp = PreprocessConfig(history_len=8, window=6, delta_range=32)
    pipe = DARTPipeline(
        preprocess=pp,
        teacher_config=ModelConfig(
            layers=1, dim=32, heads=2, history_len=8, bitmap_size=64
        ),
        latency_budget=100.0,
        storage_budget=1_000_000.0,
        teacher_train=TrainConfig(epochs=2, batch_size=64, lr=2e-3, seed=0),
        student_train=TrainConfig(epochs=2, batch_size=64, lr=2e-3, seed=1),
        max_samples=1200,
        seed=0,
    )
    result = pipe.run(trace)
    assert result.f1["teacher"] > 0.4
    assert result.f1["dart"] > 0.3
    assert result.dart.latency_cycles < 100
    assert result.dart.storage_bytes < 1_000_000
    assert result.candidate.latency_cycles < 100
