"""Admission throttle: hysteresis state machine, filtering, contracts."""

import pytest

from repro.runtime import (
    AdmissionController,
    Emission,
    TenantThrottle,
    ThrottleConfig,
    ThrottledStream,
)
from repro.runtime.replay import _check_exactly_once
from repro.runtime.streaming import StreamingPrefetcher
from repro.utils.bits import BLOCK_BITS

BLOCK = 1 << BLOCK_BITS

#: fast-reacting knobs so tests converge in a few hundred accesses
FAST = dict(floor=0.25, recover=0.60, capped_degree=1, min_samples=8,
            check_every=8, hold=64, lookahead=4, result_window=64)


class ScriptedStream(StreamingPrefetcher):
    """Emits one scripted prediction list per access (accurate or garbage)."""

    def __init__(self, accurate: bool = True):
        self.accurate = accurate
        self.name = "scripted"
        self.latency_cycles = 0.0
        self.storage_bytes = 0
        self.seq = 0

    def ingest(self, pc: int, addr: int) -> list[Emission]:
        seq = self.seq
        self.seq += 1
        blk = addr >> BLOCK_BITS
        # Accurate: the next block (demanded on the very next access; one
        # prediction satisfies one demand, so windowed accuracy reads 1.0).
        # Garbage: far-away blocks the driver will never touch.
        blocks = [blk + 1] if self.accurate else [blk + 10_000, blk + 20_000]
        return [Emission(seq, blocks)]

    def flush(self) -> list[Emission]:
        return []

    def reset(self) -> None:
        self.seq = 0


def drive(stream, n, start=0):
    """Sequential block accesses; returns all delivered emissions."""
    out = []
    for i in range(start, start + n):
        out.extend(stream.ingest(0x400, i * BLOCK))
    return out


# ------------------------------------------------------------- config guard
def test_config_validation():
    with pytest.raises(ValueError, match="hysteresis"):
        ThrottleConfig(floor=0.5, recover=0.3)
    with pytest.raises(ValueError):
        ThrottleConfig(floor=-0.1)
    with pytest.raises(ValueError):
        ThrottleConfig(capped_degree=-1)
    with pytest.raises(ValueError):
        ThrottleConfig(check_every=0)


# ---------------------------------------------------------- state machine
def test_accurate_tenant_stays_full():
    ctl = AdmissionController(ThrottleConfig(**FAST))
    s = ctl.wrap(ScriptedStream(accurate=True), "good")
    out = drive(s, 400)
    assert ctl.state("good") == "full"
    assert all(len(em.blocks) == 1 for em in out)
    assert not ctl.tenants["good"].transitions


def test_garbage_tenant_escalates_to_drop():
    ctl = AdmissionController(ThrottleConfig(**FAST))
    s = ctl.wrap(ScriptedStream(accurate=False), "bad")
    out = drive(s, 400)
    assert ctl.state("bad") == "drop"
    # Escalation passed through capped on the way down.
    states = [new for _, _, new, _ in ctl.tenants["bad"].transitions]
    assert states[:2] == ["capped", "drop"]
    # Late emissions carry seqs but no blocks.
    assert out[-1].blocks == [] and out[-1].seq == 399
    assert ctl.tenants["bad"].dropped_blocks > 0


def test_capped_state_trims_degree():
    th = TenantThrottle("t", ThrottleConfig(**FAST))
    th.state = "capped"
    em = th.admit(Emission(7, [1, 2, 3]))
    assert em.seq == 7 and em.blocks == [1]
    assert th.capped_blocks == 2
    # Already within the cap: the emission passes through untouched.
    small = Emission(8, [5])
    assert th.admit(small) is small


def test_recovery_restores_full_with_hysteresis_hold():
    """A tenant that turns accurate climbs back, but only after `hold`."""
    ctl = AdmissionController(ThrottleConfig(**FAST))
    inner = ScriptedStream(accurate=False)
    s = ctl.wrap(inner, "t")
    drive(s, 200)
    assert ctl.state("t") == "drop"
    down = len(ctl.tenants["t"].transitions)
    inner.accurate = True
    drive(s, 1000, start=200)
    assert ctl.state("t") == "full"
    ups = ctl.tenants["t"].transitions[down:]
    assert [new for _, _, new, _ in ups] == ["capped", "full"]
    # Hysteresis: consecutive de-escalations are at least `hold` apart.
    seqs = [seq for seq, _, _, _ in ups]
    assert seqs[1] - seqs[0] >= FAST["hold"]


def test_monitor_scores_raw_emissions_while_dropping():
    """Accuracy must keep tracking the *inner* stream during drop-all —
    otherwise a dropped tenant could never be observed recovering."""
    ctl = AdmissionController(ThrottleConfig(**FAST))
    inner = ScriptedStream(accurate=False)
    s = ctl.wrap(inner, "t")
    drive(s, 200)
    assert ctl.state("t") == "drop"
    inner.accurate = True
    drive(s, 300, start=200)
    assert ctl.tenants["t"].monitor.accuracy > 0.5


# ------------------------------------------------------------- contracts
def test_throttled_emissions_exactly_once_ascending():
    """Throttling (even drop-all) must preserve the replay contract."""
    ctl = AdmissionController(ThrottleConfig(**FAST))
    s = ctl.wrap(ScriptedStream(accurate=False), "bad")
    n = 300
    out = drive(s, n)
    out.extend(s.flush())
    _check_exactly_once("throttled", {0: out}, {0: n})  # raises on violation


def test_throttled_engine_handle_exactly_once(dart, libquantum_traces):
    """The contract holds on a real micro-batched engine handle too."""
    trace = libquantum_traces(1, 300, 5)[0]
    ctl = AdmissionController(ThrottleConfig(**FAST, ))
    ms = dart.multistream(batch_size=16)
    h = ctl.wrap(ms.streams(1)[0])
    out = []
    for i in range(len(trace)):
        out.extend(h.ingest(int(trace.pcs[i]), int(trace.addrs[i])))
    out.extend(h.flush())
    _check_exactly_once("throttled-handle", {0: out}, {0: len(trace)})


def test_never_firing_throttle_is_bit_identical():
    """floor=0.0 can never fire: delivered emissions are the same objects."""
    ctl = AdmissionController(ThrottleConfig(floor=0.0, recover=0.0))
    inner = ScriptedStream(accurate=False)  # even a terrible tenant
    s = ctl.wrap(inner, "t")
    ref = ScriptedStream(accurate=False)
    got = drive(s, 200)
    want = drive(ref, 200)
    assert [(em.seq, em.blocks) for em in got] == [
        (em.seq, em.blocks) for em in want
    ]
    assert ctl.state("t") == "full" and not ctl.tenants["t"].transitions


# ------------------------------------------------------------- plumbing
def test_wrap_rejects_duplicate_tenant():
    ctl = AdmissionController()
    ctl.wrap(ScriptedStream(), "t")
    with pytest.raises(ValueError, match="already registered"):
        ctl.wrap(ScriptedStream(), "t")


def test_wrap_all_names_and_summary():
    ctl = AdmissionController(ThrottleConfig(**FAST))
    streams = ctl.wrap_all([ScriptedStream(), ScriptedStream()], ["a", "b"])
    assert isinstance(streams[0], ThrottledStream)
    assert set(ctl.states()) == {"a", "b"}
    summ = ctl.summary()
    assert summ["a"]["state"] == "full" and "accuracy" in summ["b"]
    with pytest.raises(ValueError, match="one name per stream"):
        ctl.wrap_all([ScriptedStream()], ["x", "y"])


def test_reset_clears_state_and_counters():
    ctl = AdmissionController(ThrottleConfig(**FAST))
    inner = ScriptedStream(accurate=False)
    s = ctl.wrap(inner, "t")
    drive(s, 200)
    assert ctl.state("t") == "drop"
    s.reset()
    assert ctl.state("t") == "full"
    assert ctl.tenants["t"].dropped_blocks == 0
    assert inner.seq == 0
