"""Campaign report generator and its CLI wrapper."""

import pytest

from repro.cli import main
from repro.core.report import (
    ShootoutSpec,
    _md_table,
    generate_report,
    section_configurator,
    section_cost_model,
    section_shootout,
    section_traces,
)


def test_md_table_shape():
    t = _md_table(["a", "b"], [["1", "2"], ["3", "4"]])
    lines = t.splitlines()
    assert lines[0] == "| a | b |"
    assert lines[1] == "|---|---|"
    assert len(lines) == 4


def test_cost_model_section_contains_paper_numbers():
    s = section_cost_model()
    assert "Table V" in s
    assert "| DART (1,32,2,K=128,C=2) | 97 |" in s  # the paper's exact latency


def test_configurator_section_reports_tiers_and_frontier():
    s = section_configurator()
    assert "DART-S" in s and "DART-L" in s
    assert "Pareto frontier" in s


def test_traces_section_lists_all_apps():
    s = section_traces(scale=0.01)
    from repro.traces import PAPER_TABLE4

    for app in PAPER_TABLE4:
        assert app in s


def test_shootout_section_runs_small():
    s = section_shootout(ShootoutSpec(apps=("619.lbm",), scale=0.01))
    assert "619.lbm" in s and "ΔIPC" in s


def test_generate_report_writes_file(tmp_path):
    out = tmp_path / "report.md"
    doc = generate_report(
        trace_scale=0.01,
        shootout=ShootoutSpec(apps=("619.lbm",), scale=0.01),
        output=out,
    )
    assert out.read_text(encoding="utf-8") == doc
    assert doc.startswith("# DART reproduction")


def test_report_cli(tmp_path, capsys):
    out = tmp_path / "r.md"
    rc = main(["report", "--scale", "0.01", "--apps", "619.lbm", "-o", str(out)])
    assert rc == 0
    assert out.exists()
    assert "wrote campaign report" in capsys.readouterr().out


def test_report_cli_stdout(capsys):
    rc = main(["report", "--scale", "0.01", "--apps", "619.lbm"])
    assert rc == 0
    assert "Table V" in capsys.readouterr().out
