"""Cross-simulator invariants under randomized traces and prefetch streams.

These are the accounting identities any cache/timing model must satisfy
regardless of workload; hypothesis drives both simulators with adversarial
access patterns and junk prefetchers.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.prefetch import PrecomputedPrefetcher
from repro.sim import (
    HierarchyConfig,
    LevelConfig,
    SimConfig,
    simulate,
    simulate_hierarchy,
)
from repro.traces.trace import MemoryTrace


def _random_trace(seed: int, n: int, footprint: int) -> MemoryTrace:
    rng = np.random.default_rng(seed)
    blocks = rng.integers(0, footprint, size=n).astype(np.int64)
    gaps = rng.integers(1, 30, size=n)
    return MemoryTrace(np.cumsum(gaps), rng.integers(0, 64, size=n), blocks << 6)


def _tiny_hier() -> HierarchyConfig:
    return HierarchyConfig(
        l1d=LevelConfig(1024, 2, 5.0),
        l2=LevelConfig(4 * 1024, 2, 10.0),
        llc=LevelConfig(16 * 1024, 4, 20.0),
        paging=False,
    )


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10**6), n=st.integers(1, 400), footprint=st.integers(1, 2000))
def test_flat_sim_accounting(seed, n, footprint):
    tr = _random_trace(seed, n, footprint)
    cfg = SimConfig(llc_capacity_bytes=16 * 1024, llc_ways=4)
    r = simulate(tr, None, cfg)
    assert r.demand_hits + r.demand_misses == n
    assert r.cycles > 0 and np.isfinite(r.ipc)
    assert r.instructions == tr.num_instructions
    # misses at least cover the cold start of every resident set
    assert r.demand_misses >= 1


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10**6), n=st.integers(5, 300))
def test_flat_sim_prefetch_accounting(seed, n):
    tr = _random_trace(seed, n, 500)
    rng = np.random.default_rng(seed + 1)
    lists = [
        [int(b) for b in rng.integers(0, 600, size=rng.integers(0, 4))] for _ in range(n)
    ]
    pf = PrecomputedPrefetcher(lists, name="fuzz", latency_cycles=int(rng.integers(0, 500)))
    cfg = SimConfig(llc_capacity_bytes=16 * 1024, llc_ways=4)
    base = simulate(tr, None, cfg)
    r = simulate(tr, pf, cfg)
    assert r.prefetches_useful <= r.prefetches_issued
    assert r.prefetches_issued <= sum(len(x) for x in lists)
    assert 0.0 <= r.accuracy <= 1.0
    assert 0.0 <= r.coverage(base.demand_misses) <= 1.0
    assert r.demand_hits + r.demand_misses == n


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 10**6), n=st.integers(1, 250), footprint=st.integers(1, 1500))
def test_hierarchy_level_identities(seed, n, footprint):
    tr = _random_trace(seed, n, footprint)
    r = simulate_hierarchy(tr, config=_tiny_hier())
    assert r.l1d.accesses == n
    assert r.l2.accesses == r.l1d.misses
    assert r.llc.accesses == r.l2.misses
    assert r.l1d.hits + r.l1d.misses == r.l1d.accesses
    assert r.llc.hits + r.llc.misses == r.llc.accesses
    assert r.sim.cycles > 0 and np.isfinite(r.sim.ipc)
    # DRAM reads = LLC misses when nothing is prefetched or written back
    assert r.dram["reads"] == r.llc.misses


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10**6))
def test_faster_dram_never_slower(seed):
    tr = _random_trace(seed, 300, 3000)
    fast = simulate(tr, None, SimConfig(dram_latency=100.0))
    slow = simulate(tr, None, SimConfig(dram_latency=400.0))
    assert fast.cycles <= slow.cycles + 1e-9


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10**6))
def test_bigger_cache_never_more_misses(seed):
    tr = _random_trace(seed, 400, 1000)
    small = simulate(tr, None, SimConfig(llc_capacity_bytes=8 * 1024, llc_ways=4))
    # LRU is a stack algorithm: same ways, more sets => inclusion holds per set
    big = simulate(tr, None, SimConfig(llc_capacity_bytes=64 * 1024, llc_ways=4))
    assert big.demand_misses <= small.demand_misses


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10**6), n=st.integers(10, 200))
def test_flat_and_hierarchy_agree_on_demand_volume(seed, n):
    tr = _random_trace(seed, n, 800)
    flat = simulate(tr, None)
    hier = simulate_hierarchy(tr, config=_tiny_hier())
    assert flat.demand_accesses == n
    assert hier.l1d.accesses == n
    # the hierarchy can only filter, never amplify, LLC traffic
    assert hier.llc.accesses <= n
